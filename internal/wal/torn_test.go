package wal

import (
	"errors"
	"reflect"
	"testing"
)

// Torn-write detection: a log stream cut at ANY byte offset must decode to
// a clean prefix of whole records — never an error, never a phantom record.
func TestTornTailEveryOffset(t *testing.T) {
	recs := sampleRecords()
	full := EncodeStream(recs)

	// Frame boundaries: offsets at which a cut leaves only whole records.
	boundary := make(map[int]int) // offset -> records before it
	off := 0
	for i, r := range recs {
		off += len(EncodeRecord(nil, r))
		boundary[off] = i + 1
	}

	for cut := 0; cut <= len(full); cut++ {
		out, err := DecodeStream(full[:cut])
		if err != nil {
			t.Fatalf("cut at %d: err = %v (torn tails must be tolerated)", cut, err)
		}
		want := 0
		for b, n := range boundary {
			if cut >= b && n > want {
				want = n
			}
		}
		if len(out) != want {
			t.Fatalf("cut at %d: decoded %d records, want %d", cut, len(out), want)
		}
		if want > 0 && !reflect.DeepEqual(out, recs[:want]) {
			t.Fatalf("cut at %d: decoded prefix differs from the original records", cut)
		}
	}
}

// A record-boundary cut followed by zero fill — the image a preallocated,
// zero-initialized log file presents after a crash — decodes fully: the
// all-zero header marks the clean end of the log.
func TestTornTailZeroPaddedBoundary(t *testing.T) {
	recs := sampleRecords()
	full := EncodeStream(recs[:3])
	padded := append(append([]byte{}, full...), make([]byte, 64)...)
	out, err := DecodeStream(padded)
	if err != nil {
		t.Fatalf("zero-padded stream: %v", err)
	}
	if !reflect.DeepEqual(out, recs[:3]) {
		t.Errorf("decoded %d records, want the 3 before the zero fill", len(out))
	}
}

// A mid-record cut followed by zero fill is NOT a clean boundary when the
// zeroed tail held nonzero bytes: the record CRC-fails and replay reports
// corruption rather than silently inventing a record.
func TestTornTailZeroPaddedMidRecord(t *testing.T) {
	recs := sampleRecords()
	full := EncodeStream(recs)
	// Cut 10 bytes into the third record's frame: its header survives but
	// most of its (nonzero) body is replaced by the zero fill.
	cut := len(EncodeRecord(nil, recs[0])) + len(EncodeRecord(nil, recs[1])) + 10
	padded := append(append([]byte{}, full[:cut]...), make([]byte, 64)...)
	out, err := DecodeStream(padded)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
	if !reflect.DeepEqual(out, recs[:2]) {
		t.Errorf("decoded %d records before the damage, want 2", len(out))
	}
}

// Mid-stream damage (not at the tail) is corruption, not truncation: the
// decoder must not skip the bad record and resynchronize on later ones.
func TestTornMidStreamIsCorruption(t *testing.T) {
	recs := sampleRecords()
	full := EncodeStream(recs)
	first := len(EncodeRecord(nil, recs[0]))
	damaged := append([]byte{}, full...)
	damaged[first+10] ^= 0x01 // inside the second record
	out, err := DecodeStream(damaged)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
	if len(out) != 1 {
		t.Errorf("decoded %d records before the damage, want 1", len(out))
	}
}
