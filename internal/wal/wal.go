// Package wal implements the write-ahead log used by the storage engine.
//
// The engine is redo-only: every page update appends an after-image record,
// commits force the log, and recovery replays records newer than the last
// sharp checkpoint. The paper's DW and LC designs both obey this protocol —
// the log records for a page are forcibly flushed before the page may be
// written to the SSD or the disk (§2.4).
//
// The log separates what has been appended (pending) from what has survived
// a flush (durable). A crash discards pending records; recovery sees only
// durable ones. Flushes charge virtual time on the dedicated log device as
// sequential page writes, batching all pending records (group commit).
package wal

import (
	"time"

	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// Type discriminates log records.
type Type uint8

// Record types.
const (
	TypeUpdate     Type = iota + 1 // page after-image
	TypeCommit                     // transaction commit
	TypeCheckpoint                 // end of a sharp checkpoint
	// TypePrepare marks a local transaction as a prepared participant of a
	// cross-partition two-phase commit. StartLSN (reused; prepares carry no
	// checkpoint horizon) holds the global transaction id the coordinator
	// log decides on; recovery resolves prepared-but-undecided transactions
	// via presumed abort. See docs/FAILURES.md ("Service failure model").
	TypePrepare
	// TypeUndo carries a page's before-image, logged ahead of the matching
	// update record when a buffered transaction applies at commit time.
	// Recovery applies undo records of aborted (unresolved) transactions so
	// an eviction that forced uncommitted records — and wrote uncommitted
	// pages — cannot leak an aborted transaction's data into the database.
	TypeUndo
)

// Record is one log entry. Update records carry the page's new payload;
// checkpoint records carry, in StartLSN, the LSN at which the checkpoint's
// flush began (recovery redoes everything after it).
type Record struct {
	LSN      uint64
	Type     Type
	Page     page.ID
	TxID     uint64
	StartLSN uint64
	Payload  []byte
	// At is the virtual time of the Append, stamped by the log. It keys
	// the sharded kernel's deterministic cross-shard merge order (see
	// MergeDurable); within one log, At order coincides with LSN order.
	At time.Duration
}

// overhead approximates the on-disk framing bytes per record.
const overhead = 32

// slabChunkBytes is the allocation unit of the payload slab. Append copies
// record payloads into chunks of this size, so steady-state appends cost one
// allocation per chunk's worth of payload rather than one per record.
const slabChunkBytes = 1 << 18

// byteSlab is a bump allocator for payload copies. Stored payloads live as
// long as the Records that reference them; chunks are reclaimed by the GC
// once every referencing record is gone (e.g. after TruncateThrough).
type byteSlab struct {
	cur []byte
}

// durableBlock is the number of records per block of the durable deque.
const durableBlock = 8192

// recDeque stores the durable records as a sequence of fixed-size blocks.
// Unlike a flat slice — whose doubling growth re-copies and re-zeroes the
// entire accumulated history, a measurable cost once a long run holds
// hundreds of thousands of durable records — appending here never moves an
// existing record, and truncation recycles whole emptied blocks.
type recDeque struct {
	blocks [][]Record
	count  int
	spare  []Record // one recycled emptied block
}

// push appends one record (records arrive in LSN order).
func (d *recDeque) push(r Record) {
	n := len(d.blocks)
	if n == 0 || len(d.blocks[n-1]) == durableBlock {
		b := d.spare
		d.spare = nil
		if b == nil {
			b = make([]Record, 0, durableBlock)
		}
		d.blocks = append(d.blocks, b)
		n++
	}
	d.blocks[n-1] = append(d.blocks[n-1], r)
	d.count++
}

// all materializes the records, oldest first, into a fresh slice.
func (d *recDeque) all() []Record {
	out := make([]Record, 0, d.count)
	for _, b := range d.blocks {
		out = append(out, b...)
	}
	return out
}

// reset replaces the contents with recs.
func (d *recDeque) reset(recs []Record) {
	*d = recDeque{}
	for _, r := range recs {
		d.push(r)
	}
}

// truncateThrough drops every record with LSN <= lsn, relying on LSN order.
// Fully-covered leading blocks are zeroed and recycled; a partially-covered
// boundary block is shifted in place.
func (d *recDeque) truncateThrough(lsn uint64) {
	for len(d.blocks) > 0 {
		b := d.blocks[0]
		if len(b) == 0 || b[len(b)-1].LSN > lsn {
			break
		}
		d.count -= len(b)
		for i := range b {
			b[i] = Record{} // drop payload refs
		}
		d.spare = b[:0]
		d.blocks = d.blocks[1:]
	}
	if len(d.blocks) == 0 {
		d.blocks = nil
		return
	}
	b := d.blocks[0]
	i := 0
	for i < len(b) && b[i].LSN <= lsn {
		i++
	}
	if i > 0 {
		n := copy(b, b[i:])
		tail := b[n:]
		for j := range tail {
			tail[j] = Record{}
		}
		d.blocks[0] = b[:n]
		d.count -= i
	}
}

// stash copies b into the slab and returns the copy (capacity-clipped so
// appends to it cannot clobber a neighbour).
func (s *byteSlab) stash(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if len(b) > slabChunkBytes/8 {
		// Outsized payloads get a dedicated copy; sharing a chunk with them
		// would waste the remainder.
		return append([]byte(nil), b...)
	}
	if cap(s.cur)-len(s.cur) < len(b) {
		s.cur = make([]byte, 0, slabChunkBytes)
	}
	off := len(s.cur)
	s.cur = append(s.cur, b...)
	return s.cur[off:len(s.cur):len(s.cur)]
}

// Log is the log manager. Create with New; methods must be called from
// simulation processes (or with a nil proc when the device allows it).
type Log struct {
	env      *sim.Env
	dev      device.Device
	pageSize int
	capacity device.PageNum

	nextLSN    uint64
	flushedLSN uint64
	pending    []Record
	pendingB   int
	durable    recDeque
	slab       byteSlab
	persist    bool // encode flush batches onto the device (file backend)

	writePos device.PageNum
	flushing bool
	fsignal  *sim.Signal

	// Reused across flushes; safe because the flushing flag serializes the
	// device-write section of Flush.
	spare     []Record // recycled pending-batch backing array
	flushBuf  []byte
	flushBufs [][]byte

	// Run-to-completion flush state: fl is the single in-flight flush (the
	// flushing flag serializes flushes, so one reusable struct suffices) and
	// wFree pools the coalescing waiters, so steady-state task-form flushes
	// allocate no continuation closures.
	fl    *flight
	wFree []*fwait

	appends      int64
	flushes      int64
	flushedPages int64
}

// New returns a log writing pageSize-byte pages to dev, which has capacity
// pages (the write position wraps, as a recycled physical log would).
func New(env *sim.Env, dev device.Device, pageSize int, capacity device.PageNum) *Log {
	return &Log{
		env:      env,
		dev:      dev,
		pageSize: pageSize,
		capacity: capacity,
		nextLSN:  1,
		fsignal:  sim.NewSignal(env),
	}
}

// Append adds a record, assigns its LSN and returns it. The record is not
// durable until a Flush covering its LSN completes. Append copies r.Payload
// into log-owned storage, so the caller may reuse its buffer immediately.
func (l *Log) Append(r Record) uint64 {
	r.LSN = l.nextLSN
	l.nextLSN++
	r.At = l.env.Now()
	r.Payload = l.slab.stash(r.Payload)
	if l.pending == nil && l.spare != nil {
		l.pending, l.spare = l.spare, nil
	}
	l.pending = append(l.pending, r)
	l.pendingB += overhead + len(r.Payload)
	l.appends++
	return r.LSN
}

// NextLSN returns the LSN the next Append will receive.
func (l *Log) NextLSN() uint64 { return l.nextLSN }

// FlushedLSN returns the highest durable LSN.
func (l *Log) FlushedLSN() uint64 { return l.flushedLSN }

// SetPersist selects whether flushes encode the batch's records onto the
// log device (true: the file backend, whose log must survive a process
// kill) or write placeholder pages that only charge device time (false,
// the default: the simulated backend, whose determinism contract and
// goldens depend on the log staying a pure timing model). A persisted log
// is read back with LoadDurable after reopening the device.
func (l *Log) SetPersist(on bool) { l.persist = on }

// buildFlushBufs prepares the page buffers for one flush batch. In persist
// mode the batch is encoded (and the tail page zero-padded, so replay
// detects the batch end); otherwise the buffers carry placeholder content
// sized by the batch's estimated footprint.
func (l *Log) buildFlushBufs(batch []Record, batchBytes int) ([][]byte, device.PageNum) {
	var nPages device.PageNum
	if l.persist {
		enc := l.flushBuf[:0]
		for _, r := range batch {
			enc = EncodeRecord(enc, r)
		}
		nPages = device.PageNum((len(enc) + l.pageSize - 1) / l.pageSize)
		need := int(nPages) * l.pageSize
		for len(enc) < need {
			enc = append(enc, 0)
		}
		l.flushBuf = enc
	} else {
		nPages = device.PageNum((batchBytes + l.pageSize - 1) / l.pageSize)
		need := int(nPages) * l.pageSize
		if cap(l.flushBuf) < need {
			l.flushBuf = make([]byte, need)
		}
		l.flushBuf = l.flushBuf[:need]
	}
	bufs := l.flushBufs[:0]
	if cap(bufs) < int(nPages) {
		bufs = make([][]byte, 0, int(nPages))
	}
	for i := 0; i < int(nPages); i++ {
		bufs = append(bufs, l.flushBuf[i*l.pageSize:(i+1)*l.pageSize])
	}
	l.flushBufs = bufs[:0]
	return bufs, nPages
}

// advanceWritePos claims nPages of log-device space for a flush. The
// placeholder (simulated) log wraps like a recycled physical log; a
// persisted log must not — wrapping would overwrite records replay still
// reads linearly — so exhausting its multi-gigabyte capacity is surfaced
// loudly instead of silently corrupting the log.
func (l *Log) advanceWritePos(nPages device.PageNum) device.PageNum {
	start := l.writePos
	if start+nPages > l.capacity {
		if l.persist {
			panic("wal: persisted log capacity exhausted (checkpoint/truncate cannot reclaim device space)")
		}
		start = 0 // wrap the circular log
	}
	l.writePos = start + nPages
	return start
}

// Flush makes every record with LSN <= upTo durable, charging log-device
// time. Concurrent flushes coalesce: a caller whose records are covered by
// an in-flight flush waits for it instead of issuing another write.
func (l *Log) Flush(p *sim.Proc, upTo uint64) {
	for l.flushedLSN < upTo {
		if l.flushing {
			l.fsignal.Wait(p)
			continue
		}
		if len(l.pending) == 0 {
			return // nothing buffered; upTo was never appended
		}
		batch := l.pending
		batchBytes := l.pendingB
		l.pending = nil
		l.pendingB = 0
		endLSN := batch[len(batch)-1].LSN
		l.flushing = true

		bufs, nPages := l.buildFlushBufs(batch, batchBytes)
		start := l.advanceWritePos(nPages)
		if err := l.dev.Write(p, start, bufs); err != nil {
			// The simulated log device cannot fail in-range; surface loudly.
			panic("wal: log device write failed: " + err.Error())
		}
		for _, r := range batch {
			l.durable.push(r)
		}
		for i := range batch {
			batch[i] = Record{} // drop payload refs before recycling
		}
		if l.spare == nil || cap(batch) > cap(l.spare) {
			l.spare = batch[:0]
		}
		if endLSN > l.flushedLSN {
			l.flushedLSN = endLSN
		}
		l.flushes++
		l.flushedPages += int64(nPages)
		l.flushing = false
		l.fsignal.Broadcast()
	}
}

// flight is the state of the one in-flight task-form flush. The flushing
// flag serializes flushes, so a single reusable struct (with its completion
// bound once) carries every device write.
type flight struct {
	l      *Log
	t      *sim.Task
	upTo   uint64
	k      func()
	batch  []Record
	endLSN uint64
	nPages device.PageNum

	onWritten func(error) // bound to (*flight).written once
}

func (f *flight) written(err error) {
	if err != nil {
		// The simulated log device cannot fail in-range; surface loudly.
		panic("wal: log device write failed: " + err.Error())
	}
	l := f.l
	for _, r := range f.batch {
		l.durable.push(r)
	}
	for i := range f.batch {
		f.batch[i] = Record{} // drop payload refs before recycling
	}
	if l.spare == nil || cap(f.batch) > cap(l.spare) {
		l.spare = f.batch[:0]
	}
	if f.endLSN > l.flushedLSN {
		l.flushedLSN = f.endLSN
	}
	l.flushes++
	l.flushedPages += int64(f.nPages)
	l.flushing = false
	l.fsignal.Broadcast()
	// Copy out before re-entering FlushTask: the recursion may start a new
	// flush that reuses this struct.
	t, upTo, k := f.t, f.upTo, f.k
	f.t, f.k, f.batch = nil, nil, nil
	l.FlushTask(t, upTo, k) // re-check, as Flush's loop does
}

// fwait is one pooled coalescing waiter: a FlushTask call parked behind an
// in-flight flush, re-entered when the flush signal fires.
type fwait struct {
	l    *Log
	t    *sim.Task
	upTo uint64
	k    func()

	fn func() // bound to (*fwait).run once
}

func (w *fwait) run() {
	l, t, upTo, k := w.l, w.t, w.upTo, w.k
	w.t, w.k = nil, nil
	l.wFree = append(l.wFree, w)
	l.FlushTask(t, upTo, k)
}

// FlushTask is the run-to-completion twin of Flush: same coalescing, batch
// construction and group-commit accounting, continuing with k once every
// record with LSN <= upTo is durable. Each re-entry mirrors one iteration
// of Flush's loop.
func (l *Log) FlushTask(t *sim.Task, upTo uint64, k func()) {
	if l.flushedLSN >= upTo {
		k()
		return
	}
	if l.flushing {
		var w *fwait
		if n := len(l.wFree); n > 0 {
			w = l.wFree[n-1]
			l.wFree[n-1] = nil
			l.wFree = l.wFree[:n-1]
		} else {
			w = &fwait{l: l}
			w.fn = w.run
		}
		w.t, w.upTo, w.k = t, upTo, k
		l.fsignal.WaitFunc(w.fn)
		return
	}
	if len(l.pending) == 0 {
		k() // nothing buffered; upTo was never appended
		return
	}
	batch := l.pending
	batchBytes := l.pendingB
	l.pending = nil
	l.pendingB = 0
	endLSN := batch[len(batch)-1].LSN
	l.flushing = true

	bufs, nPages := l.buildFlushBufs(batch, batchBytes)
	start := l.advanceWritePos(nPages)
	if l.fl == nil {
		l.fl = &flight{l: l}
		l.fl.onWritten = l.fl.written
	}
	f := l.fl
	f.t, f.upTo, f.k, f.batch, f.endLSN, f.nPages = t, upTo, k, batch, endLSN, nPages
	l.dev.WriteTask(t, start, bufs, f.onWritten)
}

// Crash discards pending (non-durable) records, as a power failure would.
func (l *Log) Crash() {
	l.pending = nil
	l.pendingB = 0
	l.flushing = false
}

// Durable returns the records that survived flushes, oldest first, as a
// fresh slice (the log stores them in blocks internally). Payloads are
// shared; callers must not modify them.
func (l *Log) Durable() []Record { return l.durable.all() }

// PendingRecords returns a copy of the records appended but not yet durable
// — what a crash right now would lose. Fault tests use it to build the
// torn-tail log images they then recover from.
func (l *Log) PendingRecords() []Record {
	return append([]Record(nil), l.pending...)
}

// LastCheckpoint returns the most recent durable checkpoint record, if any.
func (l *Log) LastCheckpoint() (Record, bool) {
	for bi := len(l.durable.blocks) - 1; bi >= 0; bi-- {
		b := l.durable.blocks[bi]
		for i := len(b) - 1; i >= 0; i-- {
			if b[i].Type == TypeCheckpoint {
				return b[i], true
			}
		}
	}
	return Record{}, false
}

// TruncateThrough discards durable records with LSN <= lsn (called after a
// checkpoint makes them unnecessary for recovery), zeroing dropped slots so
// payload chunks can be reclaimed.
func (l *Log) TruncateThrough(lsn uint64) {
	l.durable.truncateThrough(lsn)
}

// LatestUpdate returns the newest durable update record for pid, scanning
// the log backward. Because update records carry full after-images, the
// returned record alone reconstructs the page — this is what page-granular
// corruption repair redoes. Invariant I2 (checkpoints never truncate
// records still needed by dirty SSD pages) guarantees the record is present
// while any SSD frame for pid is uniquely dirty.
func (l *Log) LatestUpdate(pid page.ID) (Record, bool) {
	for bi := len(l.durable.blocks) - 1; bi >= 0; bi-- {
		b := l.durable.blocks[bi]
		for i := len(b) - 1; i >= 0; i-- {
			if b[i].Type == TypeUpdate && b[i].Page == pid {
				return b[i], true
			}
		}
	}
	return Record{}, false
}

// Stats reports append/flush activity.
func (l *Log) Stats() (appends, flushes, flushedPages int64) {
	return l.appends, l.flushes, l.flushedPages
}

// PendingBytes reports the bytes buffered for the next flush.
func (l *Log) PendingBytes() int { return l.pendingB }

// ForceInterval is a convenience for periodic log forcing, unused by the
// core engine (commits force the log) but handy for background flushers.
const ForceInterval = 10 * time.Millisecond
