package wal

import (
	"testing"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

func newTestLog(env *sim.Env) (*Log, *device.HDD) {
	dev := device.NewHDD(env, device.PaperHDDProfile(), 1<<20)
	return New(env, dev, 8192, 1<<20), dev
}

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	env := sim.NewEnv()
	l, _ := newTestLog(env)
	a := l.Append(Record{Type: TypeUpdate, Page: 1})
	b := l.Append(Record{Type: TypeUpdate, Page: 2})
	if a != 1 || b != 2 {
		t.Errorf("LSNs = %d,%d want 1,2", a, b)
	}
	if l.NextLSN() != 3 {
		t.Errorf("NextLSN = %d", l.NextLSN())
	}
}

func TestFlushMakesDurable(t *testing.T) {
	env := sim.NewEnv()
	l, dev := newTestLog(env)
	env.Go("t", func(p *sim.Proc) {
		lsn := l.Append(Record{Type: TypeUpdate, Page: 5, Payload: []byte("x")})
		if l.FlushedLSN() != 0 {
			t.Error("durable before flush")
		}
		l.Flush(p, lsn)
		if l.FlushedLSN() != lsn {
			t.Errorf("FlushedLSN = %d, want %d", l.FlushedLSN(), lsn)
		}
		if len(l.Durable()) != 1 {
			t.Errorf("durable count = %d", len(l.Durable()))
		}
	})
	env.Run(-1)
	if dev.Stats().Load().WriteOps != 1 {
		t.Errorf("log device writes = %d, want 1", dev.Stats().Load().WriteOps)
	}
}

func TestFlushBatchesGroupCommit(t *testing.T) {
	env := sim.NewEnv()
	l, dev := newTestLog(env)
	env.Go("t", func(p *sim.Proc) {
		var last uint64
		for i := 0; i < 100; i++ {
			last = l.Append(Record{Type: TypeUpdate, Page: page.ID(i), Payload: make([]byte, 64)})
		}
		l.Flush(p, last)
	})
	env.Run(-1)
	if got := dev.Stats().Load().WriteOps; got != 1 {
		t.Errorf("one flush issued %d write ops, want 1", got)
	}
	if got := dev.Stats().Load().WritePages; got != 2 {
		// 100 * (64+32) bytes = 9600 bytes = 2 pages of 8192.
		t.Errorf("flushed %d pages, want 2", got)
	}
}

func TestFlushUpToAlreadyDurableIsFree(t *testing.T) {
	env := sim.NewEnv()
	l, dev := newTestLog(env)
	env.Go("t", func(p *sim.Proc) {
		lsn := l.Append(Record{Type: TypeUpdate, Page: 1})
		l.Flush(p, lsn)
		before := dev.Stats().Load().WriteOps
		l.Flush(p, lsn)
		l.Flush(p, 0)
		if dev.Stats().Load().WriteOps != before {
			t.Error("redundant flush wrote to the device")
		}
	})
	env.Run(-1)
}

func TestConcurrentFlushesCoalesce(t *testing.T) {
	env := sim.NewEnv()
	l, dev := newTestLog(env)
	var lsns [5]uint64
	for i := range lsns {
		lsns[i] = l.Append(Record{Type: TypeCommit, TxID: uint64(i)})
	}
	for i := range lsns {
		i := i
		env.Go("committer", func(p *sim.Proc) {
			l.Flush(p, lsns[i])
			if l.FlushedLSN() < lsns[i] {
				t.Errorf("committer %d resumed before its LSN was durable", i)
			}
		})
	}
	env.Run(-1)
	if got := dev.Stats().Load().WriteOps; got != 1 {
		t.Errorf("5 concurrent commits issued %d writes, want 1 (group commit)", got)
	}
}

func TestCrashDropsPending(t *testing.T) {
	env := sim.NewEnv()
	l, _ := newTestLog(env)
	env.Go("t", func(p *sim.Proc) {
		l.Append(Record{Type: TypeUpdate, Page: 1})
		lsn := l.Append(Record{Type: TypeUpdate, Page: 2})
		l.Flush(p, lsn)
		l.Append(Record{Type: TypeUpdate, Page: 3}) // never flushed
	})
	env.Run(-1)
	l.Crash()
	if len(l.Durable()) != 2 {
		t.Errorf("durable = %d records after crash, want 2", len(l.Durable()))
	}
	if l.PendingBytes() != 0 {
		t.Error("pending survived crash")
	}
}

func TestLastCheckpoint(t *testing.T) {
	env := sim.NewEnv()
	l, _ := newTestLog(env)
	env.Go("t", func(p *sim.Proc) {
		if _, ok := l.LastCheckpoint(); ok {
			t.Error("checkpoint found in empty log")
		}
		l.Append(Record{Type: TypeUpdate, Page: 1})
		l.Append(Record{Type: TypeCheckpoint, StartLSN: 1})
		l.Append(Record{Type: TypeUpdate, Page: 2})
		last := l.Append(Record{Type: TypeCheckpoint, StartLSN: 3})
		l.Flush(p, last)
		cp, ok := l.LastCheckpoint()
		if !ok || cp.StartLSN != 3 {
			t.Errorf("LastCheckpoint = %+v, %v", cp, ok)
		}
	})
	env.Run(-1)
}

func TestTruncateThrough(t *testing.T) {
	env := sim.NewEnv()
	l, _ := newTestLog(env)
	env.Go("t", func(p *sim.Proc) {
		var last uint64
		for i := 0; i < 10; i++ {
			last = l.Append(Record{Type: TypeUpdate, Page: page.ID(i)})
		}
		l.Flush(p, last)
	})
	env.Run(-1)
	l.TruncateThrough(6)
	d := l.Durable()
	if len(d) != 4 || d[0].LSN != 7 {
		t.Errorf("after truncate: %d records, first LSN %d; want 4, 7", len(d), d[0].LSN)
	}
}

func TestLogWrapsAtCapacity(t *testing.T) {
	env := sim.NewEnv()
	dev := device.NewHDD(env, device.PaperHDDProfile(), 4)
	l := New(env, dev, 8192, 4)
	env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			lsn := l.Append(Record{Type: TypeUpdate, Page: 1, Payload: make([]byte, 8000)})
			l.Flush(p, lsn) // each flush is one page; position must wrap
		}
	})
	env.Run(-1)
	if got := dev.Stats().Load().WriteOps; got != 10 {
		t.Errorf("writes = %d, want 10", got)
	}
}

func TestFlushChargesSequentialTime(t *testing.T) {
	env := sim.NewEnv()
	prof := device.Profile{RandRead: 10 * time.Millisecond, SeqRead: time.Millisecond,
		RandWrite: 10 * time.Millisecond, SeqWrite: time.Millisecond}
	dev := device.NewHDD(env, prof, 1000)
	l := New(env, dev, 8192, 1000)
	var t1, t2 time.Duration
	env.Go("t", func(p *sim.Proc) {
		lsn := l.Append(Record{Type: TypeUpdate, Page: 1})
		l.Flush(p, lsn)
		t1 = p.Now()
		lsn = l.Append(Record{Type: TypeUpdate, Page: 2})
		l.Flush(p, lsn)
		t2 = p.Now()
	})
	env.Run(-1)
	if t1 != 10*time.Millisecond {
		t.Errorf("first flush took %v, want 10ms (seek)", t1)
	}
	if t2-t1 != time.Millisecond {
		t.Errorf("second flush took %v, want 1ms (sequential)", t2-t1)
	}
}

func TestStats(t *testing.T) {
	env := sim.NewEnv()
	l, _ := newTestLog(env)
	env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			lsn := l.Append(Record{Type: TypeUpdate, Page: 1})
			l.Flush(p, lsn)
		}
	})
	env.Run(-1)
	appends, flushes, pages := l.Stats()
	if appends != 3 || flushes != 3 || pages != 3 {
		t.Errorf("stats = %d/%d/%d, want 3/3/3", appends, flushes, pages)
	}
}
