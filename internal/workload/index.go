// Traversal-driven access-method workloads: real btree and heapfile code
// running over storage.Store adapters inside a simulation, so the page
// access pattern *emerges* from structure traversal — the root and upper
// internal nodes become genuinely hot because every lookup passes through
// them, leaf heat follows the key distribution, and insert-heavy mixes
// create pages on the fly through node splits — instead of being sampled
// from a synthetic distribution like the OLTP drivers in this package.

package workload

import (
	"encoding/binary"
	"errors"
	"math/rand"

	"turbobp/btree"
	"turbobp/heapfile"
	"turbobp/internal/sim"
	"turbobp/storage"
)

// IndexKind selects one traversal-driven access-method workload.
type IndexKind int

// The workload kinds of the `bpesim index` matrix.
const (
	// IndexPoint: B+-tree point lookups with an 80/20 key skew, each
	// followed by the heap-page fetch of the row the index entry names.
	IndexPoint IndexKind = iota
	// IndexRange: B+-tree range scans over the leaf sibling chain,
	// random start key, fixed span.
	IndexRange
	// IndexInsert: insert-heavy — uniformly random keys into a private
	// per-worker tree, one commit per insert; splits create pages on
	// the fly (the §4.2 pattern TAC cannot cache).
	IndexInsert
	// IndexHeapScan: heapfile sequential scans mixed with random
	// record Gets (7 Gets per full scan).
	IndexHeapScan
	// IndexMixed: order-entry style — insert a record, index it, commit,
	// then look back at two random earlier keys; private per-worker
	// structures.
	IndexMixed
)

// String names the kind the way the experiment table does.
func (k IndexKind) String() string {
	switch k {
	case IndexPoint:
		return "point"
	case IndexRange:
		return "range"
	case IndexInsert:
		return "insert"
	case IndexHeapScan:
		return "heapscan"
	case IndexMixed:
		return "mixed"
	}
	return "unknown"
}

// IndexMix describes one traversal-driven run: Workers simulated clients
// each performing OpsPerWorker logical operations of Kind against
// structures loaded with Rows rows. Every worker draws from its own
// deterministic RNG stream (Seed + worker id), so a run is a pure
// function of the mix regardless of scheduling.
type IndexMix struct {
	Kind         IndexKind
	Workers      int
	Rows         int // rows loaded before the measured phase
	OpsPerWorker int
	Span         int64 // range-scan width in keys (IndexRange)
	Seed         int64
}

// IndexResult accumulates what the run observed. Counter fields are sums
// over workers; Height is the maximum over the trees involved.
type IndexResult struct {
	Ops      int64  // completed logical operations (measured phase)
	Scanned  int64  // records/keys visited by range and heap scans
	NotFound int64  // point lookups that missed (0 on a correct run)
	Height   uint64 // max B+-tree height at end
	Splits   uint64 // total node splits across trees
	Keys     uint64 // total keys across trees
	Records  uint64 // total live heapfile records
	Err      error  // first failure, if any
}

func (r *IndexResult) fail(err error) {
	if r.Err == nil {
		r.Err = err
	}
}

// encodeRID packs a heapfile RID into the int64 value slot of an index
// entry (slot counts stay far below 1<<16).
func encodeRID(rid heapfile.RID) int64 { return rid.Page<<16 | int64(rid.Slot) }

// decodeRID is the inverse of encodeRID.
func decodeRID(v int64) heapfile.RID {
	return heapfile.RID{Page: v >> 16, Slot: int(v & 0xFFFF)}
}

// skewKey draws a key with the classic 80/20 skew: 80% of lookups hit the
// lowest 20% of the key space. Keys are dense [0, rows), so the hot keys
// share leaves — leaf heat emerges from the traversal.
func skewKey(rng *rand.Rand, rows int64) int64 {
	hot := rows / 5
	if hot < 1 {
		hot = 1
	}
	if rng.Intn(10) < 8 {
		return rng.Int63n(hot)
	}
	if rows <= hot {
		return rng.Int63n(rows)
	}
	return hot + rng.Int63n(rows-hot)
}

// indexRecord builds the 16-byte heap record for key.
func indexRecord(buf []byte, key int64) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(key))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(key)*0x9E3779B97F4A7C15)
}

// indexShared is what the load phase hands the workers: meta page ids to
// reopen structures through each worker's own Store, plus the loaded RIDs
// for random record Gets.
type indexShared struct {
	treeMeta []int64 // one per worker for private kinds, else length 1
	heapMeta []int64
	rids     []heapfile.RID
	failed   bool
}

// private reports whether each worker mutates its own structures (no
// cross-worker isolation exists inside one Tree or File).
func (k IndexKind) private() bool { return k == IndexInsert || k == IndexMixed }

// Start spawns the load phase and Workers client processes on env. Every
// process obtains its own storage.Store from newStore (bound to that
// process), so the same code drives the Proc or Task engine form, or any
// other Store. onLoaded fires (inside the simulation) when the load phase
// completes — the harness snapshots engine counters there so measured-
// phase rates exclude loading. onDone fires after the last worker exits;
// the caller typically stops background engine processes there and runs
// the environment with env.Run(-1) until the event queue drains. The
// returned result is fully populated once the environment stops.
func (m IndexMix) Start(env *sim.Env, newStore func(p *sim.Proc) storage.Store, onLoaded, onDone func()) *IndexResult {
	res := &IndexResult{}
	sh := &indexShared{}
	ready := sim.NewSignal(env)

	env.Go("index-load", func(p *sim.Proc) {
		if err := m.load(newStore(p), sh); err != nil {
			res.fail(err)
			sh.failed = true
		}
		if onLoaded != nil {
			onLoaded()
		}
		ready.Broadcast()
	})

	workers := make([]*sim.Proc, m.Workers)
	for w := 0; w < m.Workers; w++ {
		w := w
		workers[w] = env.Go("index-worker", func(p *sim.Proc) {
			st := newStore(p)
			ready.WaitFired(p)
			if sh.failed {
				return
			}
			if err := m.worker(p, st, sh, w, res); err != nil {
				res.fail(err)
			}
		})
	}

	env.Go("index-join", func(p *sim.Proc) {
		for _, wp := range workers {
			wp.Done().WaitFired(p)
		}
		if onDone != nil {
			onDone()
		}
	})
	return res
}

// load builds the structures the workers will traverse. Read-only kinds
// share one tree and one heap file; mutating kinds get one private set
// per worker (a Tree or File must not be used concurrently with itself).
func (m IndexMix) load(st storage.Store, sh *indexShared) error {
	if m.Kind.private() {
		for w := 0; w < m.Workers; w++ {
			t, err := btree.Create(st)
			if err != nil {
				return err
			}
			sh.treeMeta = append(sh.treeMeta, t.Meta())
			if m.Kind == IndexMixed {
				f, err := heapfile.Create(st)
				if err != nil {
					return err
				}
				sh.heapMeta = append(sh.heapMeta, f.Meta())
			}
		}
		return st.Commit()
	}

	f, err := heapfile.Create(st)
	if err != nil {
		return err
	}
	t, err := btree.Create(st)
	if err != nil {
		return err
	}
	sh.heapMeta = []int64{f.Meta()}
	sh.treeMeta = []int64{t.Meta()}
	rec := make([]byte, 16)
	for key := int64(0); key < int64(m.Rows); key++ {
		indexRecord(rec, key)
		rid, err := f.Insert(rec)
		if err != nil {
			return err
		}
		if err := t.Insert(key, encodeRID(rid)); err != nil {
			return err
		}
		sh.rids = append(sh.rids, rid)
		if key%64 == 63 {
			if err := st.Commit(); err != nil {
				return err
			}
		}
	}
	return st.Commit()
}

// worker runs one client's measured phase and records its slice of the
// final per-structure stats.
func (m IndexMix) worker(p *sim.Proc, st storage.Store, sh *indexShared, w int, res *IndexResult) error {
	rng := rand.New(rand.NewSource(m.Seed + int64(w)*7919))
	switch m.Kind {
	case IndexPoint:
		return m.pointWorker(st, sh, w, rng, res)
	case IndexRange:
		return m.rangeWorker(st, sh, w, rng, res)
	case IndexInsert:
		return m.insertWorker(st, sh, w, rng, res)
	case IndexHeapScan:
		return m.heapScanWorker(st, sh, w, rng, res)
	case IndexMixed:
		return m.mixedWorker(st, sh, w, rng, res)
	}
	return errors.New("workload: unknown index kind")
}

// recordTree folds a tree's final height/splits/size into the result.
func recordTree(t *btree.Tree, res *IndexResult) error {
	h, err := t.Height()
	if err != nil {
		return err
	}
	if h > res.Height {
		res.Height = h
	}
	s, err := t.Splits()
	if err != nil {
		return err
	}
	res.Splits += s
	n, err := t.Size()
	if err != nil {
		return err
	}
	res.Keys += n
	return nil
}

// recordHeap folds a heap file's final record count into the result.
func recordHeap(f *heapfile.File, res *IndexResult) error {
	n, err := f.Count()
	if err != nil {
		return err
	}
	res.Records += n
	return nil
}

func (m IndexMix) pointWorker(st storage.Store, sh *indexShared, w int, rng *rand.Rand, res *IndexResult) error {
	t, err := btree.Open(st, sh.treeMeta[0])
	if err != nil {
		return err
	}
	f, err := heapfile.Open(st, sh.heapMeta[0])
	if err != nil {
		return err
	}
	for i := 0; i < m.OpsPerWorker; i++ {
		key := skewKey(rng, int64(m.Rows))
		v, err := t.Search(key)
		if err != nil {
			if errors.Is(err, btree.ErrNotFound) {
				res.NotFound++
				res.Ops++
				continue
			}
			return err
		}
		if _, err := f.Get(decodeRID(v)); err != nil {
			return err
		}
		res.Ops++
	}
	if w == 0 {
		if err := recordTree(t, res); err != nil {
			return err
		}
		return recordHeap(f, res)
	}
	return nil
}

func (m IndexMix) rangeWorker(st storage.Store, sh *indexShared, w int, rng *rand.Rand, res *IndexResult) error {
	t, err := btree.Open(st, sh.treeMeta[0])
	if err != nil {
		return err
	}
	span := m.Span
	if span < 1 {
		span = 1
	}
	for i := 0; i < m.OpsPerWorker; i++ {
		max := int64(m.Rows) - span
		var lo int64
		if max > 0 {
			lo = rng.Int63n(max)
		}
		visited := int64(0)
		if err := t.Range(lo, lo+span-1, func(_, _ int64) error {
			visited++
			return nil
		}); err != nil {
			return err
		}
		res.Scanned += visited
		res.Ops++
	}
	if w == 0 {
		return recordTree(t, res)
	}
	return nil
}

func (m IndexMix) insertWorker(st storage.Store, sh *indexShared, w int, rng *rand.Rand, res *IndexResult) error {
	t, err := btree.Open(st, sh.treeMeta[w])
	if err != nil {
		return err
	}
	for i := 0; i < m.OpsPerWorker; i++ {
		key := rng.Int63()
		if err := t.Insert(key, key); err != nil {
			return err
		}
		if err := st.Commit(); err != nil {
			return err
		}
		res.Ops++
	}
	return recordTree(t, res)
}

func (m IndexMix) heapScanWorker(st storage.Store, sh *indexShared, w int, rng *rand.Rand, res *IndexResult) error {
	f, err := heapfile.Open(st, sh.heapMeta[0])
	if err != nil {
		return err
	}
	for i := 0; i < m.OpsPerWorker; i++ {
		if i%8 == 0 {
			visited := int64(0)
			if err := f.Scan(func(_ heapfile.RID, _ []byte) error {
				visited++
				return nil
			}); err != nil {
				return err
			}
			res.Scanned += visited
		} else {
			rid := sh.rids[rng.Intn(len(sh.rids))]
			if _, err := f.Get(rid); err != nil {
				return err
			}
		}
		res.Ops++
	}
	if w == 0 {
		return recordHeap(f, res)
	}
	return nil
}

func (m IndexMix) mixedWorker(st storage.Store, sh *indexShared, w int, rng *rand.Rand, res *IndexResult) error {
	t, err := btree.Open(st, sh.treeMeta[w])
	if err != nil {
		return err
	}
	f, err := heapfile.Open(st, sh.heapMeta[w])
	if err != nil {
		return err
	}
	rec := make([]byte, 16)
	for seq := int64(0); seq < int64(m.OpsPerWorker); seq++ {
		indexRecord(rec, seq)
		rid, err := f.Insert(rec)
		if err != nil {
			return err
		}
		if err := t.Insert(seq, encodeRID(rid)); err != nil {
			return err
		}
		if err := st.Commit(); err != nil {
			return err
		}
		for l := 0; l < 2; l++ {
			v, err := t.Search(rng.Int63n(seq + 1))
			if err != nil {
				return err
			}
			if _, err := f.Get(decodeRID(v)); err != nil {
				return err
			}
		}
		res.Ops++
	}
	if err := recordTree(t, res); err != nil {
		return err
	}
	return recordHeap(f, res)
}
