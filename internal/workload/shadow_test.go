package workload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"turbobp/btree"
	"turbobp/heapfile"
	"turbobp/internal/engine"
	"turbobp/internal/fault"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/storage"
)

// Shadow-model property tests: a B+-tree and a heapfile run through the
// simulated engine while plain Go maps mirror every mutation. After each
// committed batch — and after a crash/recover cycle armed at a WAL-flush
// crash point mid-run — the structures must agree with the maps exactly:
// every key resolves, Range enumerates the sorted model, every record
// round-trips, and Scan sees precisely the live set. Both Store forms run
// the same script, so the Proc and Task access paths are held to the same
// contract. The crash fires at fault.SitePostWALFlush during a batch's
// commit: the log force completed, so the batch is durable even though the
// commit was never acknowledged — the atomic-batch contract the btree and
// heapfile package docs promise.

// shadowModel mirrors the tree and heap contents in plain maps.
type shadowModel struct {
	tree map[int64]int64
	heap map[heapfile.RID][]byte
}

func newShadowModel() *shadowModel {
	return &shadowModel{tree: map[int64]int64{}, heap: map[heapfile.RID][]byte{}}
}

// verify checks the live structures against the model exhaustively.
func (m *shadowModel) verify(tr *btree.Tree, hf *heapfile.File) error {
	n, err := tr.Size()
	if err != nil {
		return err
	}
	if n != uint64(len(m.tree)) {
		return fmt.Errorf("tree size %d, model %d", n, len(m.tree))
	}
	for k, v := range m.tree {
		got, err := tr.Search(k)
		if err != nil {
			return fmt.Errorf("search %d: %w", k, err)
		}
		if got != v {
			return fmt.Errorf("search %d = %d, model %d", k, got, v)
		}
	}
	// Range over the whole key space must enumerate the model in order.
	prev := int64(-1 << 62)
	seen := 0
	err = tr.Range(-1<<62, 1<<62-1, func(k, v int64) error {
		if k <= prev {
			return fmt.Errorf("range out of order: %d after %d", k, prev)
		}
		prev = k
		want, ok := m.tree[k]
		if !ok {
			return fmt.Errorf("range surfaced key %d not in model", k)
		}
		if v != want {
			return fmt.Errorf("range key %d = %d, model %d", k, v, want)
		}
		seen++
		return nil
	})
	if err != nil {
		return err
	}
	if seen != len(m.tree) {
		return fmt.Errorf("range saw %d keys, model %d", seen, len(m.tree))
	}
	cnt, err := hf.Count()
	if err != nil {
		return err
	}
	if cnt != uint64(len(m.heap)) {
		return fmt.Errorf("heap count %d, model %d", cnt, len(m.heap))
	}
	for rid, rec := range m.heap {
		got, err := hf.Get(rid)
		if err != nil {
			return fmt.Errorf("get %v: %w", rid, err)
		}
		if !bytes.Equal(got, rec) {
			return fmt.Errorf("get %v = %x, model %x", rid, got, rec)
		}
	}
	scanned := 0
	err = hf.Scan(func(rid heapfile.RID, rec []byte) error {
		want, ok := m.heap[rid]
		if !ok {
			return fmt.Errorf("scan surfaced %v not in model", rid)
		}
		if !bytes.Equal(rec, want) {
			return fmt.Errorf("scan %v = %x, model %x", rid, rec, want)
		}
		scanned++
		return nil
	})
	if err != nil {
		return err
	}
	if scanned != len(m.heap) {
		return fmt.Errorf("scan saw %d records, model %d", scanned, len(m.heap))
	}
	return nil
}

// applyBatch runs one batch of random mutations against the structures and
// returns the model deltas; the caller folds them in once the batch commits.
type batchDelta struct {
	treePut map[int64]int64
	treeDel []int64
	heapPut map[heapfile.RID][]byte
	heapDel []heapfile.RID
}

func runBatch(rng *rand.Rand, m *shadowModel, tr *btree.Tree, hf *heapfile.File) (*batchDelta, error) {
	d := &batchDelta{treePut: map[int64]int64{}, heapPut: map[heapfile.RID][]byte{}}
	// Candidates for delete/update come from the committed model minus what
	// this batch already deleted (map iteration may hand the same entry out
	// twice within one batch).
	delK := map[int64]bool{}
	delR := map[heapfile.RID]bool{}
	// Both pickers scan for the minimum so the script is deterministic —
	// Go map iteration order would otherwise vary the op sequence per run.
	pickKey := func() (int64, bool) {
		best, ok := int64(0), false
		for k := range m.tree {
			if !delK[k] && (!ok || k < best) {
				best, ok = k, true
			}
		}
		return best, ok
	}
	pickRID := func() (heapfile.RID, bool) {
		var best heapfile.RID
		ok := false
		for rid := range m.heap {
			if delR[rid] {
				continue
			}
			if !ok || rid.Page < best.Page || (rid.Page == best.Page && rid.Slot < best.Slot) {
				best, ok = rid, true
			}
		}
		return best, ok
	}
	for op := 0; op < 4; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert a fresh key + record
			k := rng.Int63n(1 << 20)
			v := rng.Int63()
			if err := tr.Insert(k, v); err != nil {
				return nil, fmt.Errorf("tree insert %d: %w", k, err)
			}
			d.treePut[k] = v
			rec := make([]byte, 16)
			binary.LittleEndian.PutUint64(rec, uint64(k))
			binary.LittleEndian.PutUint64(rec[8:], uint64(v))
			rid, err := hf.Insert(rec)
			if err != nil {
				return nil, fmt.Errorf("heap insert: %w", err)
			}
			d.heapPut[rid] = rec
		case 6, 7: // delete an existing key / record, if any
			if k, ok := pickKey(); ok {
				if err := tr.Delete(k); err != nil {
					return nil, fmt.Errorf("tree delete %d: %w", k, err)
				}
				d.treeDel = append(d.treeDel, k)
				delK[k] = true
				// A reinsert earlier in this batch is dead now; dropping it
				// keeps fold's delete-then-put order honest.
				delete(d.treePut, k)
			}
			if rid, ok := pickRID(); ok {
				if err := hf.Delete(rid); err != nil {
					return nil, fmt.Errorf("heap delete %v: %w", rid, err)
				}
				d.heapDel = append(d.heapDel, rid)
				delR[rid] = true
				delete(d.heapPut, rid)
			}
		case 8: // overwrite an existing record in place
			if rid, ok := pickRID(); ok {
				rec := make([]byte, 16)
				binary.LittleEndian.PutUint64(rec, rng.Uint64())
				binary.LittleEndian.PutUint64(rec[8:], rng.Uint64())
				if err := hf.UpdateRecord(rid, rec); err != nil {
					return nil, fmt.Errorf("heap update %v: %w", rid, err)
				}
				d.heapPut[rid] = rec
			}
		case 9: // re-insert an existing key with a new value
			if k, ok := pickKey(); ok {
				v := rng.Int63()
				if err := tr.Insert(k, v); err != nil {
					return nil, fmt.Errorf("tree reinsert %d: %w", k, err)
				}
				d.treePut[k] = v
			}
		}
	}
	return d, nil
}

func (m *shadowModel) fold(d *batchDelta) {
	// Deletes first: a batch may delete a key (or free a heap slot) and then
	// insert the same key (or reuse the slot) later in the batch, in which
	// case the put must win.
	for _, k := range d.treeDel {
		delete(m.tree, k)
	}
	for _, rid := range d.heapDel {
		delete(m.heap, rid)
	}
	for k, v := range d.treePut {
		m.tree[k] = v
	}
	for rid, rec := range d.heapPut {
		m.heap[rid] = rec
	}
}

// runShadow drives the property test in one Store form. With crash set, a
// SitePostWALFlush crash point is armed mid-run: the commit that trips it
// has already forced the log, so after Crash+Recover the batch must be
// durably present in full.
func runShadow(t *testing.T, task bool, crash bool) {
	inj := fault.New(7)
	env := sim.NewEnv()
	e := engine.New(env, engine.Config{
		Design: ssd.DW, DBPages: 8192, PoolPages: 48, SSDFrames: 512,
		PayloadSize: 256, Faults: inj,
	})
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	var alloc int64
	env.Go("shadow-driver", func(p *sim.Proc) {
		defer e.StopBackground()
		var st storage.Store
		if task {
			st = engine.NewTaskStore(e, p, &alloc)
		} else {
			st = engine.NewProcStore(e, p, &alloc)
		}
		tr, err := btree.Create(st)
		if err != nil {
			t.Error(err)
			return
		}
		hf, err := heapfile.Create(st)
		if err != nil {
			t.Error(err)
			return
		}
		treeMeta, heapMeta := tr.Meta(), hf.Meta()
		if err := st.Commit(); err != nil {
			t.Error(err)
			return
		}
		rng := rand.New(rand.NewSource(0x5AD0))
		m := newShadowModel()
		crashed := false
		const rounds = 120
		for r := 0; r < rounds; r++ {
			if crash && r == rounds/2 {
				// Arm the crash point on the next WAL force — this batch's
				// commit. Mid-batch a tree insert may be splitting pages; the
				// post-flush site guarantees the whole batch is durable anyway.
				inj.ArmCrash(fault.SitePostWALFlush, 1)
			}
			d, err := runBatch(rng, m, tr, hf)
			if err != nil {
				t.Errorf("round %d: %v", r, err)
				return
			}
			err = st.Commit()
			if errors.Is(err, fault.ErrCrashPoint) {
				crashed = true
				e.Crash()
				if err := e.Recover(p); err != nil {
					t.Errorf("recover: %v", err)
					return
				}
				// The log force completed before the crash, so the whole
				// batch is durable despite the unacknowledged commit.
				m.fold(d)
				if tr, err = btree.Open(st, treeMeta); err != nil {
					t.Errorf("reopen tree: %v", err)
					return
				}
				if hf, err = heapfile.Open(st, heapMeta); err != nil {
					t.Errorf("reopen heap: %v", err)
					return
				}
				if err := m.verify(tr, hf); err != nil {
					t.Errorf("post-recovery round %d: %v", r, err)
					return
				}
				continue
			}
			if err != nil {
				t.Errorf("commit round %d: %v", r, err)
				return
			}
			m.fold(d)
			if r%20 == 19 {
				if err := m.verify(tr, hf); err != nil {
					t.Errorf("round %d: %v", r, err)
					return
				}
			}
		}
		if crash && !crashed {
			t.Error("crash point never fired")
			return
		}
		if err := m.verify(tr, hf); err != nil {
			t.Errorf("final: %v", err)
		}
	})
	env.Run(-1)
	env.Shutdown()
}

func TestShadowProc(t *testing.T)      { runShadow(t, false, false) }
func TestShadowTask(t *testing.T)      { runShadow(t, true, false) }
func TestShadowProcCrash(t *testing.T) { runShadow(t, false, true) }
func TestShadowTaskCrash(t *testing.T) { runShadow(t, true, true) }
