package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// Table identifies a TPC-H table region of the database file.
type Table int

// The TPC-H tables that matter at the I/O level, laid out as contiguous
// regions of the database in roughly their real size proportions.
const (
	Lineitem Table = iota
	Orders
	Partsupp
	Part
	Customer
	Supplier
	Nation
	numTables
)

// tableLayout gives each table's fraction of the database, in layout order.
var tableLayout = [numTables]float64{
	Lineitem: 0.62,
	Orders:   0.16,
	Partsupp: 0.10,
	Part:     0.05,
	Customer: 0.04,
	Supplier: 0.02,
	Nation:   0.01,
}

// tscan is one sequential scan within a query: frac of table's pages.
type tscan struct {
	table Table
	frac  float64
}

// tpchQuery describes one of the 22 queries as its scan set plus random
// index lookups into a table (the paper: "some queries are dominated by
// index lookups in the LINEITEM table which are mostly random I/O").
type tpchQuery struct {
	scans       []tscan
	lookupTable Table
	lookupFrac  float64 // lookups as a fraction of the table's pages
}

// queries is the I/O profile of Q1..Q22.
var queries = [22]tpchQuery{
	{scans: []tscan{{Lineitem, 0.95}}},
	{scans: []tscan{{Part, 0.8}, {Supplier, 1}}, lookupTable: Partsupp, lookupFrac: 0.10},
	{scans: []tscan{{Customer, 0.3}, {Orders, 0.5}, {Lineitem, 0.45}}},
	{scans: []tscan{{Orders, 0.6}}, lookupTable: Lineitem, lookupFrac: 0.03},
	{scans: []tscan{{Customer, 0.3}, {Orders, 0.4}, {Lineitem, 0.4}, {Supplier, 1}}},
	{scans: []tscan{{Lineitem, 0.9}}},
	{scans: []tscan{{Lineitem, 0.4}, {Orders, 0.3}, {Customer, 0.2}}},
	{scans: []tscan{{Lineitem, 0.35}, {Orders, 0.3}, {Part, 0.2}}},
	{scans: []tscan{{Lineitem, 0.5}, {Partsupp, 0.4}, {Part, 0.3}}},
	{scans: []tscan{{Lineitem, 0.3}, {Orders, 0.4}, {Customer, 0.5}}},
	{scans: []tscan{{Partsupp, 0.8}, {Supplier, 1}}},
	{scans: []tscan{{Lineitem, 0.5}}, lookupTable: Orders, lookupFrac: 0.06},
	{scans: []tscan{{Customer, 1}, {Orders, 0.8}}},
	{scans: []tscan{{Lineitem, 0.25}, {Part, 0.5}}},
	{scans: []tscan{{Lineitem, 0.4}, {Supplier, 1}}},
	{scans: []tscan{{Partsupp, 0.6}, {Part, 0.4}}},
	{scans: []tscan{{Part, 0.2}}, lookupTable: Lineitem, lookupFrac: 0.08},
	{scans: []tscan{{Lineitem, 0.6}, {Orders, 0.5}, {Customer, 0.2}}},
	{scans: []tscan{{Lineitem, 0.2}, {Part, 0.3}}, lookupTable: Lineitem, lookupFrac: 0.05},
	{scans: []tscan{{Lineitem, 0.3}, {Partsupp, 0.3}}, lookupTable: Lineitem, lookupFrac: 0.04},
	{scans: []tscan{{Lineitem, 0.5}, {Supplier, 1}}, lookupTable: Orders, lookupFrac: 0.08},
	{scans: []tscan{{Customer, 0.5}}, lookupTable: Orders, lookupFrac: 0.04},
}

// TPCH drives the decision-support benchmark against a storage engine.
type TPCH struct {
	SF          int   // scale factor (30 or 100 in the paper)
	DBPages     int64 // database size in pages
	Streams     int   // concurrent query streams in the throughput test
	Seed        int64
	LookupScale float64 // multiplier on per-query lookup volume (default 1)
}

// NewTPCH returns the driver with the paper's stream counts (4 @30SF,
// 5 @100SF, per the TPC-H minimums it cites).
func NewTPCH(sf int, dbPages int64) *TPCH {
	streams := 4
	if sf >= 100 {
		streams = 5
	}
	return &TPCH{SF: sf, DBPages: dbPages, Streams: streams, Seed: 1, LookupScale: 4}
}

// tableRegion returns the page range [start, start+n) of a table.
func (h *TPCH) tableRegion(t Table) (page.ID, int64) {
	var off float64
	for i := Table(0); i < t; i++ {
		off += tableLayout[i]
	}
	start := int64(off * float64(h.DBPages))
	n := int64(tableLayout[t] * float64(h.DBPages))
	if n < 1 {
		n = 1
	}
	return page.ID(start), n
}

// RunQuery executes query q (0-based) and returns its elapsed virtual time.
func (h *TPCH) RunQuery(p *sim.Proc, e *engine.Engine, q int, rng *rand.Rand) (time.Duration, error) {
	startT := p.Now()
	spec := queries[q]
	for _, sc := range spec.scans {
		start, n := h.tableRegion(sc.table)
		pages := int(sc.frac * float64(n))
		if pages < 1 {
			pages = 1
		}
		// Scans start at a query-dependent offset within the table, as a
		// predicate-driven range scan would.
		off := int64(0)
		if pages < int(n) {
			off = rng.Int63n(n - int64(pages))
		}
		if err := e.Scan(p, start+page.ID(off), pages); err != nil {
			return 0, fmt.Errorf("q%d scan: %w", q+1, err)
		}
	}
	if spec.lookupFrac > 0 {
		start, n := h.tableRegion(spec.lookupTable)
		lookups := int(spec.lookupFrac * float64(n) * h.LookupScale)
		for i := 0; i < lookups; i++ {
			pid := start + page.ID(rng.Int63n(n))
			if _, err := e.Get(p, pid); err != nil {
				return 0, fmt.Errorf("q%d lookup: %w", q+1, err)
			}
		}
	}
	return p.Now() - startT, nil
}

// RunRefresh executes one refresh function (RF1 or RF2): inserts/deletes
// touch a random 0.1% of ORDERS and LINEITEM pages.
func (h *TPCH) RunRefresh(p *sim.Proc, e *engine.Engine, rng *rand.Rand) (time.Duration, error) {
	startT := p.Now()
	tx := e.Begin()
	for _, t := range []Table{Orders, Lineitem} {
		start, n := h.tableRegion(t)
		updates := int(float64(n) * 0.001)
		if updates < 1 {
			updates = 1
		}
		for i := 0; i < updates; i++ {
			pid := start + page.ID(rng.Int63n(n))
			if err := e.Update(p, tx, pid, func(pl []byte) { pl[2]++ }); err != nil {
				return 0, err
			}
		}
	}
	if err := e.Commit(p, tx); err != nil {
		return 0, err
	}
	return p.Now() - startT, nil
}

// PowerResult holds the serial power test's component timings.
type PowerResult struct {
	QuerySecs   [22]float64
	RefreshSecs [2]float64
}

// RunPower runs the power test: RF1, the 22 queries serially, RF2.
func (h *TPCH) RunPower(p *sim.Proc, e *engine.Engine) (PowerResult, error) {
	var res PowerResult
	rng := rand.New(rand.NewSource(h.Seed))
	d, err := h.RunRefresh(p, e, rng)
	if err != nil {
		return res, err
	}
	res.RefreshSecs[0] = d.Seconds()
	for q := 0; q < 22; q++ {
		d, err := h.RunQuery(p, e, q, rng)
		if err != nil {
			return res, err
		}
		res.QuerySecs[q] = d.Seconds()
	}
	d, err = h.RunRefresh(p, e, rng)
	if err != nil {
		return res, err
	}
	res.RefreshSecs[1] = d.Seconds()
	return res, nil
}

// Power computes the TPC-H power metric: 3600·SF over the geometric mean
// of the 22 query times and 2 refresh times.
func (r PowerResult) Power(sf int) float64 {
	logSum := 0.0
	for _, s := range r.QuerySecs {
		logSum += math.Log(clampSecs(s))
	}
	for _, s := range r.RefreshSecs {
		logSum += math.Log(clampSecs(s))
	}
	geo := math.Exp(logSum / 24)
	return 3600 * float64(sf) / geo
}

func clampSecs(s float64) float64 {
	if s < 1e-6 {
		return 1e-6
	}
	return s
}

// RunThroughput runs the throughput test: Streams concurrent query streams
// (each a stream-specific permutation of the 22 queries) plus a refresh
// stream executing Streams RF pairs. It returns the elapsed virtual time.
// It must be called from a process; it blocks until all streams finish.
func (h *TPCH) RunThroughput(p *sim.Proc, e *engine.Engine) (time.Duration, error) {
	env := p.Env()
	startT := p.Now()
	remaining := h.Streams + 1
	done := sim.NewSignal(env)
	var firstErr error
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			done.Broadcast()
		}
	}
	for s := 0; s < h.Streams; s++ {
		s := s
		env.Go(fmt.Sprintf("tpch-stream-%d", s), func(sp *sim.Proc) {
			rng := rand.New(rand.NewSource(h.Seed + int64(s+1)*104729))
			order := rng.Perm(22)
			for _, q := range order {
				if _, err := h.RunQuery(sp, e, q, rng); err != nil {
					finish(err)
					return
				}
			}
			finish(nil)
		})
	}
	env.Go("tpch-refresh-stream", func(sp *sim.Proc) {
		rng := rand.New(rand.NewSource(h.Seed + 999331))
		for i := 0; i < h.Streams; i++ {
			for j := 0; j < 2; j++ {
				if _, err := h.RunRefresh(sp, e, rng); err != nil {
					finish(err)
					return
				}
			}
		}
		finish(nil)
	})
	done.WaitFired(p)
	return p.Now() - startT, firstErr
}

// Throughput computes the TPC-H throughput metric for an elapsed test.
func (h *TPCH) Throughput(elapsed time.Duration) float64 {
	return float64(h.Streams) * 22 * 3600 / elapsed.Seconds() * float64(h.SF)
}

// QphH combines power and throughput into the composite metric.
func QphH(power, throughput float64) float64 {
	return math.Sqrt(power * throughput)
}
