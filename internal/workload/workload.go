// Package workload implements synthetic drivers with the access-pattern
// essentials of the paper's three benchmarks:
//
//   - TPC-C: update-intensive OLTP, highly skewed (≈75% of accesses to
//     ≈20% of the pages, roughly one write per two reads — §4.2).
//   - TPC-E: read-intensive OLTP (≈10:1 read:write) with a large warm
//     working set (§4.3).
//   - TPC-H: decision support — 22 queries of table scans plus random
//     index lookups, run as a serial power test and concurrent throughput
//     streams with refresh functions (§4.4).
//
// The drivers exercise only the storage engine (page reads, updates,
// scans, commits); SQL processing is out of scope, as the paper attributes
// all of its observed effects to these aggregate I/O properties.
package workload

import (
	"math/rand"
	"time"

	"turbobp/internal/bufpool"
	"turbobp/internal/engine"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/trace"
)

// Tier is one level of a graded access-skew distribution: AccessFrac of
// the accesses go to PageFrac of the pages.
type Tier struct {
	PageFrac   float64
	AccessFrac float64
}

// OLTP describes a transactional driver.
type OLTP struct {
	Name          string
	DBPages       int64
	Tiers         []Tier // graded skew; fractions each sum to 1
	AccessesPerTx int
	UpdateFrac    float64 // probability a given access is an update
	// UpdateTier restricts updates to one tier's pages (-1: updates follow
	// the read distribution). OLTP benchmarks concentrate writes on a few
	// hot tables, which is what keeps checkpoints and dirty sets bounded.
	UpdateTier int
	Workers    int // concurrent clients
	Seed       int64
	// ProcWorkers runs each worker as a goroutine-backed process (the
	// original form) instead of a run-to-completion task. The two forms
	// drive the simulation through the identical event sequence; tasks are
	// the default because they avoid the park/resume channel handoffs.
	// Equivalence tests exercise both.
	ProcWorkers bool

	// RemoteFrac is the probability that a transaction is distributed:
	// it performs one extra access, routed through Router, to a page
	// owned by another shard of a sharded cluster. Zero (the default)
	// leaves the driver — and its RNG stream — exactly as before.
	// Distributed transactions require the task form (the remote hop is a
	// continuation message); Start panics on RemoteFrac > 0 with
	// ProcWorkers.
	RemoteFrac float64
	// Router issues the remote access of a distributed transaction. It
	// must eventually run k (possibly epochs later, when the remote
	// shard's reply message arrives). Required when RemoteFrac > 0.
	Router RemoteRouter
}

// RemoteRouter sends one cross-shard page access on behalf of a worker.
// Implementations draw everything they need (destination shard, page,
// read/write) from rng — on the calling worker's kernel, before any
// message is sent — so the decision stream stays deterministic.
type RemoteRouter interface {
	RemoteOp(t *sim.Task, rng *rand.Rand, k func())
}

// Split partitions the driver over n shard kernels: each part owns
// DBPages/n pages (its shard engine's local page space), runs its share
// of the workers (the remainder spread over the first shards), and draws
// from a distinct seed. The parts together model the same client
// population against a page-range-partitioned database.
func (o OLTP) Split(n int) []OLTP {
	parts := make([]OLTP, n)
	pages := o.DBPages / int64(n)
	if pages < 1 {
		pages = 1
	}
	base, extra := o.Workers/n, o.Workers%n
	for i := range parts {
		p := o
		p.DBPages = pages
		p.Workers = base
		if i < extra {
			p.Workers++
		}
		// A large odd stride keeps shard seed sequences disjoint from the
		// per-worker 7919 stride used inside Start.
		p.Seed = o.Seed + int64(i)*1000003
		parts[i] = p
	}
	return parts
}

// TPCC returns the paper's TPC-C-like profile for a database of dbPages:
// ~75% of accesses to ~20% of the pages (Leutenegger & Dias), one write
// per two reads, updates following the read skew.
func TPCC(dbPages int64) OLTP {
	return OLTP{
		Name:          "tpcc",
		DBPages:       dbPages,
		Tiers:         []Tier{{0.20, 0.75}, {0.80, 0.25}},
		AccessesPerTx: 8,
		UpdateFrac:    1.0 / 3.0, // one write per two reads
		UpdateTier:    -1,
		Workers:       32,
		Seed:          1,
	}
}

// TPCE returns the TPC-E-like profile: read-intensive with graded skew —
// a small very hot head (largely memory-resident at small scales), a warm
// middle that is the SSD's natural target (~60% of the database holds 95%
// of the accesses, matching the paper's working-set observations), and a
// cold tail. Updates concentrate on the hot head (the trade tables).
func TPCE(dbPages int64) OLTP {
	return OLTP{
		Name:          "tpce",
		DBPages:       dbPages,
		Tiers:         []Tier{{0.15, 0.65}, {0.45, 0.30}, {0.40, 0.05}},
		AccessesPerTx: 8,
		UpdateFrac:    0.045, // page-level writes are rare in TPC-E
		UpdateTier:    0,
		Workers:       32,
		Seed:          1,
	}
}

// scatter maps a logical index to a page id with an affine permutation so
// the hot set is spread over the whole database rather than being one
// contiguous (and extent-aligned) region.
func scatter(i, n int64) page.ID {
	// Knuth's multiplicative hash constant. i < 2^32 always (page indices),
	// so i*mult < 2^63 cannot overflow negative and one modulo suffices.
	const mult = 2654435761
	return page.ID((i * mult) % n)
}

// pick draws a page according to the graded skew; tier >= 0 restricts the
// draw to that tier's pages.
func (o *OLTP) pick(rng *rand.Rand, tier int) page.ID {
	if tier < 0 {
		u := rng.Float64()
		tier = len(o.Tiers) - 1
		for i, t := range o.Tiers {
			if u < t.AccessFrac {
				tier = i
				break
			}
			u -= t.AccessFrac
		}
	}
	var offset float64
	for i := 0; i < tier; i++ {
		offset += o.Tiers[i].PageFrac
	}
	lo := int64(offset * float64(o.DBPages))
	n := int64(o.Tiers[tier].PageFrac * float64(o.DBPages))
	if n < 1 {
		n = 1
	}
	return scatter(lo+rng.Int63n(n), o.DBPages)
}

// Start spawns the driver's worker processes against e. Workers run until
// the environment stops driving them (harnesses bound the run with
// Env.Run(duration) and then Shutdown) or until the returned stop function
// is called — workers then exit at their next transaction boundary, which
// matters when the harness wants to crash the engine with no transactions
// in flight. Committed transactions are counted in the engine's stats;
// onCommit, if non-nil, is also called at each commit with the commit
// time.
func (o *OLTP) Start(env *sim.Env, e *engine.Engine, onCommit func(t time.Duration)) (stop func()) {
	if o.RemoteFrac > 0 && o.ProcWorkers {
		panic("workload: distributed transactions require task-form workers")
	}
	if o.RemoteFrac > 0 && o.Router == nil {
		panic("workload: RemoteFrac > 0 without a Router")
	}
	stopped := false
	for w := 0; w < o.Workers; w++ {
		rng := rand.New(rand.NewSource(o.Seed + int64(w)*7919))
		if o.ProcWorkers {
			env.Go(o.Name+"-worker", func(p *sim.Proc) {
				for !stopped {
					if err := o.runTx(p, e, rng); err != nil {
						panic("workload: " + err.Error())
					}
					if onCommit != nil {
						onCommit(p.Now())
					}
				}
			})
			continue
		}
		w := &taskWorker{o: o, e: e, rng: rng, stopped: &stopped, onCommit: onCommit}
		w.mutateF = w.mutatePayload
		w.afterGetF = w.afterGet
		w.afterUpF = w.afterUpdate
		w.afterCommitF = w.afterCommit
		w.afterRemoteF = w.step
		env.Spawn(o.Name+"-worker", func(t *sim.Task) {
			w.t = t
			w.loop()
		})
	}
	return func() { stopped = true }
}

// taskWorker is one run-to-completion OLTP client: the state of runTx as a
// struct, with its continuations bound once at Start, so the steady-state
// transaction loop allocates nothing. It draws from the RNG in exactly the
// order runTx does, and the continuation chain is stack-safe: every access
// charges CPU time, and the kernel's inline-depth cap periodically
// reschedules the continuation, unwinding the stack.
type taskWorker struct {
	o        *OLTP
	e        *engine.Engine
	t        *sim.Task
	rng      *rand.Rand
	stopped  *bool
	onCommit func(t time.Duration)

	tx     uint64
	a      int  // accesses issued in the current transaction
	v      byte // update value for the in-flight access
	remote bool // current transaction still owes its cross-shard access

	mutateF      func([]byte)
	afterGetF    func(*bufpool.Frame, error)
	afterUpF     func(error)
	afterCommitF func(error)
	afterRemoteF func()
}

func (w *taskWorker) loop() {
	if *w.stopped {
		return
	}
	w.tx = w.e.Begin()
	w.a = 0
	w.remote = w.o.RemoteFrac > 0 && w.rng.Float64() < w.o.RemoteFrac
	w.step()
}

// step issues the next access of the current transaction.
func (w *taskWorker) step() {
	o := w.o
	if w.a >= o.AccessesPerTx {
		if w.remote {
			// The distributed transaction's cross-shard access: the worker
			// stalls until the remote shard's reply message runs w.step
			// again, which then commits.
			w.remote = false
			o.Router.RemoteOp(w.t, w.rng, w.afterRemoteF)
			return
		}
		w.e.CommitTask(w.t, w.tx, w.afterCommitF)
		return
	}
	w.a++
	if w.rng.Float64() < o.UpdateFrac {
		pid := o.pick(w.rng, o.UpdateTier)
		w.v = byte(w.rng.Intn(256))
		w.e.UpdateTask(w.t, w.tx, pid, w.mutateF, w.afterUpF)
		return
	}
	pid := o.pick(w.rng, -1)
	w.e.GetTask(w.t, pid, w.afterGetF)
}

func (w *taskWorker) mutatePayload(pl []byte) {
	pl[0] = w.v
	pl[1]++
}

func (w *taskWorker) afterGet(_ *bufpool.Frame, err error) {
	if err != nil {
		panic("workload: " + err.Error())
	}
	w.step()
}

func (w *taskWorker) afterUpdate(err error) {
	if err != nil {
		panic("workload: " + err.Error())
	}
	w.step()
}

func (w *taskWorker) afterCommit(err error) {
	if err != nil {
		panic("workload: " + err.Error())
	}
	if w.onCommit != nil {
		w.onCommit(w.t.Now())
	}
	w.loop()
}

// runTx executes one transaction.
func (o *OLTP) runTx(p *sim.Proc, e *engine.Engine, rng *rand.Rand) error {
	tx := e.Begin()
	for a := 0; a < o.AccessesPerTx; a++ {
		if rng.Float64() < o.UpdateFrac {
			pid := o.pick(rng, o.UpdateTier)
			v := byte(rng.Intn(256))
			if err := e.Update(p, tx, pid, func(pl []byte) {
				pl[0] = v
				pl[1]++
			}); err != nil {
				return err
			}
		} else {
			pid := o.pick(rng, -1)
			if _, err := e.Get(p, pid); err != nil {
				return err
			}
		}
	}
	return e.Commit(p, tx)
}

// GenerateTrace materializes txs transactions of this profile as a
// replayable page-access trace (see internal/trace).
func (o *OLTP) GenerateTrace(txs int) *trace.Trace {
	rng := rand.New(rand.NewSource(o.Seed))
	t := &trace.Trace{}
	for i := 0; i < txs; i++ {
		for a := 0; a < o.AccessesPerTx; a++ {
			if rng.Float64() < o.UpdateFrac {
				t.Update(o.pick(rng, o.UpdateTier))
			} else {
				t.Read(o.pick(rng, -1))
			}
		}
		t.Commit()
	}
	return t
}
