package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

func TestScatterIsPermutation(t *testing.T) {
	prop := func(nRaw uint16) bool {
		n := int64(nRaw%500) + 1
		seen := make(map[page.ID]bool, n)
		for i := int64(0); i < n; i++ {
			seen[scatter(i, n)] = true
		}
		return len(seen) == int(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterInRange(t *testing.T) {
	const n = 1000
	for i := int64(0); i < n; i++ {
		p := scatter(i, n)
		if p < 0 || p >= n {
			t.Fatalf("scatter(%d) = %d out of range", i, p)
		}
	}
}

func TestPickRespectsSkew(t *testing.T) {
	o := TPCC(10000)
	rng := rand.New(rand.NewSource(1))
	hotPages := map[page.ID]bool{}
	for i := int64(0); i < 2000; i++ { // tier 0 = first 20% of indices
		hotPages[scatter(i, o.DBPages)] = true
	}
	hot := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if hotPages[o.pick(rng, -1)] {
			hot++
		}
	}
	frac := float64(hot) / draws
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("hot fraction = %.3f, want ~0.75", frac)
	}
}

func TestPickTierRestriction(t *testing.T) {
	o := TPCE(10000)
	rng := rand.New(rand.NewSource(2))
	tier0 := map[page.ID]bool{}
	n0 := int64(o.Tiers[0].PageFrac * float64(o.DBPages))
	for i := int64(0); i < n0; i++ {
		tier0[scatter(i, o.DBPages)] = true
	}
	for i := 0; i < 5000; i++ {
		if !tier0[o.pick(rng, 0)] {
			t.Fatal("tier-0 pick left the tier")
		}
	}
}

func TestProfiles(t *testing.T) {
	c := TPCC(1 << 20)
	if c.UpdateFrac <= 0.3 || c.UpdateFrac >= 0.4 {
		t.Errorf("TPC-C update fraction = %v, want ~1/3", c.UpdateFrac)
	}
	e := TPCE(1 << 20)
	if e.UpdateFrac >= c.UpdateFrac/3 {
		t.Errorf("TPC-E update fraction %v not much lower than TPC-C's %v", e.UpdateFrac, c.UpdateFrac)
	}
	if e.UpdateTier != 0 {
		t.Error("TPC-E updates should concentrate on the hot tier")
	}
	var pages, access float64
	for _, tier := range e.Tiers {
		pages += tier.PageFrac
		access += tier.AccessFrac
	}
	if math.Abs(pages-1) > 1e-9 || math.Abs(access-1) > 1e-9 {
		t.Errorf("TPC-E tiers don't sum to 1: pages=%v access=%v", pages, access)
	}
}

func TestOLTPDriverCommits(t *testing.T) {
	env := sim.NewEnv()
	e := engine.New(env, engine.Config{
		Design: ssd.LC, DBPages: 512, PoolPages: 32, SSDFrames: 64,
		PayloadSize: 32, CPUPerAccess: -1,
	})
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	wl := TPCC(512)
	wl.Workers = 4
	var commits int
	wl.Start(env, e, func(time.Duration) { commits++ })
	env.Run(2 * time.Second)
	e.StopBackground()
	if commits == 0 {
		t.Fatal("no transactions committed")
	}
	if int64(commits) != e.Stats().Commits {
		t.Errorf("callback count %d != engine commits %d", commits, e.Stats().Commits)
	}
	if e.Stats().Updates == 0 {
		t.Error("no updates performed")
	}
	env.Shutdown()
}

func TestTPCHTableLayoutCoversDatabase(t *testing.T) {
	var sum float64
	for _, f := range tableLayout {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("table layout sums to %v", sum)
	}
	h := NewTPCH(30, 10000)
	var covered int64
	for tb := Table(0); tb < numTables; tb++ {
		start, n := h.tableRegion(tb)
		if int64(start) != covered && tb > 0 {
			// Regions must be adjacent in layout order.
			t.Errorf("table %d starts at %d, previous ended at %d", tb, start, covered)
		}
		covered = int64(start) + n
	}
	if covered > 10000+int64(numTables) {
		t.Errorf("regions overflow the database: %d", covered)
	}
}

func TestTPCHStreamsBySF(t *testing.T) {
	if NewTPCH(30, 1000).Streams != 4 {
		t.Error("30SF streams != 4")
	}
	if NewTPCH(100, 1000).Streams != 5 {
		t.Error("100SF streams != 5")
	}
}

func TestTPCHQuerySpecsPopulated(t *testing.T) {
	lookups := 0
	for q, spec := range queries {
		if len(spec.scans) == 0 && spec.lookupFrac == 0 {
			t.Errorf("q%d does no work", q+1)
		}
		if spec.lookupFrac > 0 {
			lookups++
		}
	}
	if lookups < 5 {
		t.Errorf("only %d queries have index lookups", lookups)
	}
}

func newTPCHEngine(t *testing.T) (*sim.Env, *engine.Engine) {
	t.Helper()
	env := sim.NewEnv()
	e := engine.New(env, engine.Config{
		Design: ssd.DW, DBPages: 2048, PoolPages: 128, SSDFrames: 512,
		PayloadSize: 32, CPUPerAccess: -1,
	})
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	return env, e
}

func TestTPCHPowerTest(t *testing.T) {
	env, e := newTPCHEngine(t)
	h := NewTPCH(30, 2048)
	var res PowerResult
	done := false
	env.Go("power", func(p *sim.Proc) {
		var err error
		res, err = h.RunPower(p, e)
		if err != nil {
			t.Error(err)
		}
		done = true
	})
	for !done {
		env.Run(env.Now() + time.Second)
	}
	e.StopBackground()
	for q, s := range res.QuerySecs {
		if s <= 0 {
			t.Errorf("q%d took %vs", q+1, s)
		}
	}
	if res.RefreshSecs[0] <= 0 || res.RefreshSecs[1] <= 0 {
		t.Errorf("refresh times = %v", res.RefreshSecs)
	}
	if p := res.Power(30); p <= 0 {
		t.Errorf("power = %v", p)
	}
	env.Shutdown()
}

func TestTPCHThroughputTest(t *testing.T) {
	env, e := newTPCHEngine(t)
	h := NewTPCH(30, 2048)
	h.Streams = 2
	var elapsed time.Duration
	done := false
	env.Go("thru", func(p *sim.Proc) {
		var err error
		elapsed, err = h.RunThroughput(p, e)
		if err != nil {
			t.Error(err)
		}
		done = true
	})
	for !done {
		env.Run(env.Now() + time.Second)
	}
	e.StopBackground()
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if th := h.Throughput(elapsed); th <= 0 {
		t.Errorf("throughput = %v", th)
	}
	env.Shutdown()
}

func TestPowerMetricFormula(t *testing.T) {
	var r PowerResult
	for i := range r.QuerySecs {
		r.QuerySecs[i] = 2 // all queries 2s
	}
	r.RefreshSecs = [2]float64{2, 2}
	// geomean = 2 => power = 3600*SF/2
	if got := r.Power(10); math.Abs(got-18000) > 1e-6 {
		t.Errorf("Power = %v, want 18000", got)
	}
}

func TestQphHIsGeometricMean(t *testing.T) {
	if got := QphH(100, 400); math.Abs(got-200) > 1e-9 {
		t.Errorf("QphH = %v, want 200", got)
	}
}

func TestClampSecs(t *testing.T) {
	if clampSecs(0) != 1e-6 || clampSecs(-1) != 1e-6 || clampSecs(5) != 5 {
		t.Error("clampSecs misbehaves")
	}
}

func TestSplitPartitionsDriver(t *testing.T) {
	o := TPCC(8000)
	o.Workers = 10
	parts := o.Split(4)
	if len(parts) != 4 {
		t.Fatalf("Split(4) returned %d parts", len(parts))
	}
	workers := 0
	seeds := map[int64]bool{}
	for i, p := range parts {
		if p.DBPages != 2000 {
			t.Errorf("part %d: DBPages = %d, want 2000", i, p.DBPages)
		}
		workers += p.Workers
		if seeds[p.Seed] {
			t.Errorf("part %d: duplicate seed %d", i, p.Seed)
		}
		seeds[p.Seed] = true
		if p.AccessesPerTx != o.AccessesPerTx || p.UpdateFrac != o.UpdateFrac {
			t.Errorf("part %d: profile fields not preserved", i)
		}
	}
	if workers != 10 {
		t.Errorf("split workers sum to %d, want 10", workers)
	}
	if parts[0].Workers != 3 || parts[3].Workers != 2 {
		t.Errorf("worker remainder not spread over first shards: %d/%d",
			parts[0].Workers, parts[3].Workers)
	}
}

func TestRemoteFracRequiresTaskFormAndRouter(t *testing.T) {
	for _, tc := range []struct{ proc bool }{{true}, {false}} {
		o := TPCC(100)
		o.RemoteFrac = 0.5
		o.ProcWorkers = tc.proc
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Start with RemoteFrac and proc=%v, no router: no panic", tc.proc)
				}
			}()
			o.Start(sim.NewEnv(), nil, nil)
		}()
	}
}
