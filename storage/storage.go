// Package storage defines the page-level storage-access interface that
// the access-method layer (package btree, package heapfile) is written
// against. Two families of implementations satisfy it: the public
// turbobp.DB (file-backed or simulated devices behind the public API)
// and the internal simulation adapters over internal/engine (both the
// goroutine-backed Proc form and the continuation-based Task form), so
// the same B+-tree traversal or heap-file scan can run against a real
// database or inside a discrete-event experiment. This is what lets
// page access patterns in the `bpesim index` experiment *emerge* from
// structure traversal instead of being sampled from a distribution.
package storage

// Store is a flat page space with copy-in/copy-out access. Page ids are
// dense from 0; AllocPage extends the allocated prefix. Implementations
// are single-writer per Store value: callers must not invoke methods of
// one Store concurrently (the turbobp.DB behind it may be shared by many
// Stores, each from its own goroutine or simulated process).
type Store interface {
	// PageSize returns the usable payload bytes per page. It is constant
	// for the life of the Store.
	PageSize() int

	// AllocPage returns the next unallocated page id and marks it
	// allocated. Freshly allocated pages read as zeroes.
	AllocPage() (int64, error)

	// Read copies the page payload into buf and returns the number of
	// bytes copied (min of PageSize and len(buf)).
	Read(pid int64, buf []byte) (int, error)

	// Update applies fn to the page payload as one atomic page write.
	// The payload passed to fn is valid only for the call.
	Update(pid int64, fn func(payload []byte)) error

	// Commit makes all Updates since the previous Commit durable as one
	// transaction. Implementations whose Update is already autocommitted
	// (turbobp.DB outside an explicit Tx) make this a no-op.
	Commit() error
}
