package turbobp_test

import (
	"encoding/binary"
	"testing"

	"turbobp"
	"turbobp/btree"
	"turbobp/heapfile"
)

// buildIndexed loads a B-tree-indexed table under the given design and
// returns (split-born pages cached in SSD, total split-born pages).
func buildIndexed(t *testing.T, design turbobp.Design) (cached, total int) {
	t.Helper()
	db, err := turbobp.Open(turbobp.Options{
		Design:    design,
		DBPages:   8192,
		PoolPages: 64,
		SSDFrames: 4096,
		PageSize:  128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	table, err := heapfile.Create(db)
	if err != nil {
		t.Fatal(err)
	}
	index, err := btree.Create(db)
	if err != nil {
		t.Fatal(err)
	}
	first := db.Allocated()
	for key := int64(0); key < 2000; key++ {
		rec := make([]byte, 16)
		binary.LittleEndian.PutUint64(rec, uint64(key))
		rid, err := table.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := index.Insert(key, rid.Page); err != nil {
			t.Fatal(err)
		}
	}
	last := db.Allocated()
	for pid := first; pid < last; pid++ {
		total++
		before := db.Stats().SSDHits
		if _, err := db.Read(pid, make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
		if db.Stats().SSDHits > before {
			cached++
		}
	}
	return cached, total
}

// TestTACMissesSplitBornPages reproduces the §4.2 observation end-to-end:
// pages created on the fly by B+-tree splits are dirty at birth, so TAC
// (which admits pages only when they are read from disk, or re-written
// over an invalid SSD version at dirty eviction) caches far fewer of them
// than DW, which admits at eviction time.
func TestTACMissesSplitBornPages(t *testing.T) {
	dwCached, dwTotal := buildIndexed(t, turbobp.DW)
	tacCached, tacTotal := buildIndexed(t, turbobp.TAC)
	if dwTotal != tacTotal {
		t.Fatalf("page counts differ: %d vs %d", dwTotal, tacTotal)
	}
	if dwCached == 0 {
		t.Fatal("DW cached no split-born pages; the probe is broken")
	}
	if float64(tacCached) >= float64(dwCached)*0.8 {
		t.Errorf("TAC cached %d/%d split-born pages vs DW's %d/%d; expected a clear deficit",
			tacCached, tacTotal, dwCached, dwTotal)
	}
}
