// Package turbobp is a storage engine with an SSD-extended buffer pool,
// implementing the designs of Do et al., "Turbocharging DBMS Buffer Pool
// Using SSDs" (SIGMOD 2011): clean-write (CW), dual-write (DW),
// lazy-cleaning (LC), and the temperature-aware caching (TAC) comparison
// point.
//
// A DB manages fixed-size pages across a three-level hierarchy: an
// in-memory buffer pool, an optional SSD buffer-pool extension, and the
// database's primary storage, with a write-ahead log, sharp checkpoints
// and crash recovery. Two backends are available:
//
//   - Simulated (Options.Dir == ""): storage devices are queueing models
//     calibrated to the paper's hardware (Table 1), and time is virtual.
//     This is what the experiment harness and benchmarks use.
//   - File-backed (Options.Dir set): pages live in ordinary files; device
//     time is real. This is what the runnable examples and the bpeserve
//     network server use.
//
// # Concurrency
//
// A DB is safe for concurrent use. How much actually runs in parallel
// depends on the backend and Options.Concurrency:
//
//   - Simulated backend, and file backend with Concurrency <= 1:
//     operations are serialized internally (the simulation kernel is
//     single-threaded by design — its determinism contract depends on it).
//   - File backend with Concurrency = P > 1: the page range splits into P
//     contiguous partitions, each a complete engine (buffer pool, SSD
//     region, WAL slice) behind its own mutex. Operations on different
//     partitions — including LRU-2 victim selection and CW/DW/LC/TAC
//     admission/eviction — proceed in parallel, and Read serves resident
//     pages through a striped page-latch fast path that takes no partition
//     mutex at all.
//
// Commit durability on the file backend is governed by Options.CommitSync:
// the default (CommitSyncNone) forces the WAL to the OS only, exactly as
// before; CommitSyncEach fsyncs per commit; CommitSyncGroup batches
// concurrent committers into shared fsync flights (group commit), so a
// commit that has returned is durable — it rode some completed fsync —
// while N concurrent commits cost ~1 fsync instead of N. A transaction
// spanning multiple partitions is crash-atomic: Tx.Commit runs
// presumed-abort two-phase commit over the per-partition WALs with a
// coordinator decision log (see twophase.go), so after a crash and reopen
// (Options.OpenExisting) the transaction is either fully committed or
// fully rolled back — never split.
//
// The file backend's state survives process restarts: Open with
// Options.OpenExisting reattaches to a directory a previous process (even
// one killed with SIGKILL) left behind, reloads the persisted WALs, redoes
// committed transactions and rolls back uncommitted ones. See
// docs/FAILURES.md for the full failure model.
package turbobp

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/engine"
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/policy"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// Design selects how dirty pages evicted from the memory pool are handled
// (§2.3 of the paper).
type Design = ssd.Design

// The available designs.
const (
	// NoSSD disables the SSD extension entirely.
	NoSSD = ssd.NoSSD
	// CW (clean-write) never writes dirty pages to the SSD.
	CW = ssd.CW
	// DW (dual-write) writes dirty evictions to the SSD and the disk
	// concurrently, keeping the SSD a write-through cache.
	DW = ssd.DW
	// LC (lazy-cleaning) writes dirty evictions only to the SSD; a
	// background cleaner copies them to the disk later (write-back).
	LC = ssd.LC
	// TAC is Canim et al.'s temperature-aware caching.
	TAC = ssd.TAC
)

// CachePolicy selects the replacement/admission policy used by the memory
// buffer pool and the SSD tier's clean-frame ordering.
type CachePolicy = policy.Kind

// The available cache policies.
const (
	// PolicyLRU2 is the original LRU-2 ordering (the default).
	PolicyLRU2 = policy.LRU2
	// PolicyARC is the adaptive replacement cache (ghost-list tuned).
	PolicyARC = policy.ARC
	// PolicyCFLRU prefers evicting clean pages over dirty ones.
	PolicyCFLRU = policy.CFLRU
	// PolicyTinyLFU gates admission on a count-min frequency sketch.
	PolicyTinyLFU = policy.TinyLFU
)

// ParseCachePolicy resolves a policy name ("lru2", "arc", "cflru",
// "tinylfu"; empty = LRU-2) to its CachePolicy value.
func ParseCachePolicy(s string) (CachePolicy, error) { return policy.ParseKind(s) }

// Options configures a DB. Zero values take the paper's defaults
// (Table 2) where one exists.
type Options struct {
	// Design selects the dirty-page policy. Default: LC.
	Design Design
	// Policy selects the cache replacement/admission policy for both the
	// memory pool and the SSD tier. Default: PolicyLRU2.
	Policy CachePolicy

	// DBPages is the database size in pages. Required.
	DBPages int64
	// PoolPages is the in-memory buffer pool size in frames. Default 256.
	PoolPages int
	// SSDFrames is the SSD buffer-pool size in frames (0 with Design !=
	// NoSSD defaults to 4× PoolPages).
	SSDFrames int
	// PageSize is the usable payload bytes per page. Default 256.
	PageSize int

	// Paper knobs (Table 2): τ, μ, N, α, λ.
	FillThreshold float64
	Throttle      int
	Partitions    int
	GroupClean    int
	DirtyFraction float64

	// CheckpointInterval enables periodic sharp checkpoints (virtual time
	// in the simulated backend). 0 disables them; Checkpoint may always be
	// called explicitly.
	CheckpointInterval time.Duration
	// FuzzyCheckpoints makes checkpoints record the redo horizon without
	// flushing pages: nearly free, but recovery replays more of the log.
	FuzzyCheckpoints bool
	// WarmRestart persists the SSD buffer table in checkpoint records so
	// Recover can reuse the (surviving) SSD cache instead of starting cold.
	WarmRestart bool

	// Dir selects the file backend: page files and the log live under it.
	// Empty selects the simulated backend.
	Dir string

	// OpenExisting reattaches to a Dir a previous process left behind
	// instead of formatting it: the persisted WALs reload, committed
	// transactions redo, uncommitted ones roll back from their logged
	// before-images, and in-doubt two-phase transactions resolve against
	// the coordinator log. The directory's geometry (recorded in meta.json
	// at first open) must match these Options. Requires Dir.
	OpenExisting bool

	// FaultSeed, when nonzero, enables the deterministic fault-injection
	// layer: the DB's devices are wrapped so that I/O errors, torn writes,
	// silent corruption and whole-SSD loss can be injected (see Faults and
	// FailSSD), and the engine's crash points become armable. The same seed
	// replays the same fault schedule. Zero disables injection at no cost.
	// With Concurrency > 1 each partition gets its own injector, seeded
	// deterministically from this seed and the partition index; reach them
	// through PartitionFaults.
	FaultSeed uint64

	// Concurrency partitions the file backend's page range into this many
	// independently-locked engines (see the package doc). 0 and 1 keep the
	// classic fully-serialized backend. Requires Dir to be set.
	Concurrency int
	// CommitSync selects commit durability on the file backend: none
	// (default, legacy), one fsync per commit, or group commit.
	CommitSync CommitSyncMode
	// GroupCommitMaxDelay bounds how long a group-commit leader waits for
	// followers before fsyncing (default 500µs); GroupCommitMaxBatch caps a
	// flight's size (default 64). Both matter only under CommitSyncGroup.
	GroupCommitMaxDelay time.Duration
	GroupCommitMaxBatch int

	// ScrubInterval enables the background SSD scrubber: every interval it
	// re-reads a batch of resident frames and verifies checksum, page id
	// and LSN, healing silent corruption before a query trips over it —
	// clean frames are rewritten in place from the database copy, dirty
	// frames (the only up-to-date copy) are rebuilt through WAL redo.
	// 0, the default, disables scrubbing. See docs/FAILURES.md.
	ScrubInterval time.Duration
}

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("turbobp: database closed")

// DB is an open database.
type DB struct {
	mu        sync.Mutex
	env       *sim.Env
	eng       *engine.Engine
	opts      Options
	files     []*device.File
	allocated int64
	closed    bool
	conc      *concurrent // non-nil when Options.Concurrency > 1 (file backend)
}

// Open creates a database with the given options. The database starts
// formatted and empty (every page zero-filled).
func Open(opts Options) (*DB, error) {
	if opts.DBPages <= 0 {
		return nil, errors.New("turbobp: Options.DBPages must be positive")
	}
	if opts.PageSize <= 0 {
		opts.PageSize = 256
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 256
	}
	if opts.SSDFrames <= 0 && opts.Design != NoSSD {
		opts.SSDFrames = 4 * opts.PoolPages
	}
	if opts.Concurrency > 1 && opts.Dir == "" {
		return nil, errors.New("turbobp: Options.Concurrency > 1 requires the file backend (set Options.Dir)")
	}
	if opts.OpenExisting && opts.Dir == "" {
		return nil, errors.New("turbobp: Options.OpenExisting requires the file backend (set Options.Dir)")
	}
	if opts.CommitSync == CommitSyncGroup {
		if opts.GroupCommitMaxBatch <= 0 {
			opts.GroupCommitMaxBatch = 64
		}
		if opts.GroupCommitMaxDelay <= 0 {
			opts.GroupCommitMaxDelay = 500 * time.Microsecond
		}
	}
	cfg := engine.Config{
		Design:             opts.Design,
		Policy:             opts.Policy,
		DBPages:            opts.DBPages,
		PoolPages:          opts.PoolPages,
		SSDFrames:          opts.SSDFrames,
		PayloadSize:        opts.PageSize,
		FillThreshold:      opts.FillThreshold,
		Throttle:           opts.Throttle,
		Partitions:         opts.Partitions,
		GroupClean:         opts.GroupClean,
		DirtyFraction:      opts.DirtyFraction,
		CheckpointInterval: opts.CheckpointInterval,
		FuzzyCheckpoints:   opts.FuzzyCheckpoints,
		WarmRestart:        opts.WarmRestart,
		ScrubPeriod:        opts.ScrubInterval,
	}
	if opts.FaultSeed != 0 {
		cfg.Faults = fault.New(opts.FaultSeed)
	}
	env := sim.NewEnv()
	db := &DB{env: env, opts: opts}
	if opts.Dir == "" {
		db.eng = engine.New(env, cfg)
	} else {
		if opts.OpenExisting {
			if err := verifyMeta(opts); err != nil {
				return nil, err
			}
		} else if err := writeMeta(opts); err != nil {
			return nil, err
		}
		openFile := device.OpenFile
		if opts.OpenExisting {
			openFile = device.OpenFileExisting
		}
		cfg.CPUPerAccess = -1 // real CPUs charge themselves
		cfg.CommitRecords = true
		cfg.WALPersist = true
		cfg.WALCapacity = walPagesTotal
		filePage := page.HeaderSize + opts.PageSize
		dbFile, err := openFile(filepath.Join(opts.Dir, "db.pages"), filePage, device.PageNum(opts.DBPages))
		if err != nil {
			return nil, fmt.Errorf("turbobp: %w", err)
		}
		db.files = append(db.files, dbFile)
		var ssdDev device.Device
		if opts.Design != NoSSD && opts.SSDFrames > 0 {
			// The SSD cache never carries state across restarts (the paper's
			// §6 cold-restart assumption), so even a reopen starts it fresh.
			ssdFile, err := device.OpenFile(filepath.Join(opts.Dir, "ssd.pages"), filePage, device.PageNum(opts.SSDFrames))
			if err != nil {
				db.closeFiles()
				return nil, fmt.Errorf("turbobp: %w", err)
			}
			db.files = append(db.files, ssdFile)
			ssdDev = ssdFile
		}
		logFile, err := openFile(filepath.Join(opts.Dir, "wal.log"), 8192, walPagesTotal)
		if err != nil {
			db.closeFiles()
			return nil, fmt.Errorf("turbobp: %w", err)
		}
		db.files = append(db.files, logFile)
		if opts.Concurrency > 1 {
			var ssdFile *device.File
			if ssdDev != nil {
				ssdFile = ssdDev.(*device.File)
			}
			if err := openConcurrent(db, cfg, dbFile, ssdFile, logFile); err != nil {
				db.closeFiles()
				return nil, fmt.Errorf("turbobp: %w", err)
			}
			return db, nil // partitions are built and formatted (or recovered)
		}
		db.eng = engine.NewWithDevices(env, cfg, dbFile, ssdDev, logFile)
		if opts.OpenExisting {
			if err := db.eng.Log().LoadDurable(); err != nil {
				db.closeFiles()
				return nil, fmt.Errorf("turbobp: reload: %w", err)
			}
			db.eng.AdoptDurableTxIDs()
			err := db.doLocked("recover", func(p *sim.Proc) error {
				return db.eng.RecoverDurable(p, nil)
			})
			if err != nil {
				db.closeFiles()
				return nil, fmt.Errorf("turbobp: recover: %w", err)
			}
			return db, nil
		}
	}
	if err := db.eng.FormatDB(); err != nil {
		db.closeFiles()
		return nil, fmt.Errorf("turbobp: format: %w", err)
	}
	return db, nil
}

// dbMeta is the geometry record written to Dir/meta.json at first open and
// verified on OpenExisting: the fields that determine the on-disk layout
// (file sizes, partition boundaries, WAL slicing) must match exactly or the
// reopened engines would read another geometry's bytes as their own.
type dbMeta struct {
	Version     int   `json:"version"`
	Design      int   `json:"design"`
	DBPages     int64 `json:"db_pages"`
	PageSize    int   `json:"page_size"`
	SSDFrames   int   `json:"ssd_frames"`
	Concurrency int   `json:"concurrency"`
}

func metaOf(opts Options) dbMeta {
	conc := opts.Concurrency
	if conc < 1 {
		conc = 1
	}
	frames := opts.SSDFrames
	if opts.Design == NoSSD {
		frames = 0
	}
	return dbMeta{
		Version:     1,
		Design:      int(opts.Design),
		DBPages:     opts.DBPages,
		PageSize:    opts.PageSize,
		SSDFrames:   frames,
		Concurrency: conc,
	}
}

func writeMeta(opts Options) error {
	data, err := json.Marshal(metaOf(opts))
	if err != nil {
		return fmt.Errorf("turbobp: meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(opts.Dir, "meta.json"), data, 0o644); err != nil {
		return fmt.Errorf("turbobp: meta: %w", err)
	}
	return nil
}

func verifyMeta(opts Options) error {
	data, err := os.ReadFile(filepath.Join(opts.Dir, "meta.json"))
	if err != nil {
		return fmt.Errorf("turbobp: OpenExisting: %s is not a turbobp directory: %w", opts.Dir, err)
	}
	var have dbMeta
	if err := json.Unmarshal(data, &have); err != nil {
		return fmt.Errorf("turbobp: OpenExisting: corrupt meta.json: %w", err)
	}
	if want := metaOf(opts); have != want {
		return fmt.Errorf("turbobp: OpenExisting: geometry mismatch: directory has %+v, options give %+v", have, want)
	}
	return nil
}

func (db *DB) closeFiles() {
	for _, f := range db.files {
		f.Close()
	}
}

// do runs fn as a simulation process under the DB lock and drives the
// environment until it completes.
func (db *DB) do(name string, fn func(p *sim.Proc) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.doLocked(name, fn)
}

func (db *DB) doLocked(name string, fn func(p *sim.Proc) error) error {
	if db.closed {
		return ErrClosed
	}
	var err error
	done := false
	db.env.Go(name, func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	for !done {
		db.env.Run(db.env.Now() + time.Millisecond)
	}
	return err
}

// Read copies the payload of page pid into buf and returns the number of
// bytes copied.
func (db *DB) Read(pid int64, buf []byte) (int, error) {
	if db.conc != nil {
		return db.conc.read(db, pid, buf)
	}
	n := 0
	err := db.do("read", func(p *sim.Proc) error {
		f, err := db.eng.Get(p, page.ID(pid))
		if err != nil {
			return err
		}
		n = copy(buf, f.Pg.Payload)
		return nil
	})
	return n, err
}

// Update applies fn to the payload of page pid inside its own committed
// transaction.
func (db *DB) Update(pid int64, fn func(payload []byte)) error {
	if db.conc != nil {
		return db.conc.update(db, pid, fn)
	}
	return db.do("update", func(p *sim.Proc) error {
		tx := db.eng.Begin()
		if err := db.eng.Update(p, tx, page.ID(pid), fn); err != nil {
			return err
		}
		return db.eng.Commit(p, tx)
	})
}

// Commit is a no-op that makes *DB satisfy storage.Store: every DB.Update
// outside an explicit Tx is already its own committed transaction, so by
// the time Commit is called there is nothing left to make durable. Use
// Begin/Tx.Commit to group updates into one atomic transaction.
func (db *DB) Commit() error { return nil }

// Tx is a transaction: a sequence of reads and updates committed together.
// A Tx must not be used concurrently with itself (different Txs may run
// concurrently on the partitioned backend). On that backend the updates
// buffer until Commit, which applies them under every touched partition's
// lock and — when the transaction spans partitions — runs two-phase commit
// so the whole transaction is crash-atomic (see twophase.go). Buffering
// means Tx.Read does not observe the transaction's own uncommitted updates;
// mutation closures run at Commit against the then-current payload.
type Tx struct {
	db     *DB
	id     uint64
	writes map[int64][]func([]byte) // partitioned backend: buffered mutations
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	if db.conc != nil {
		return &Tx{db: db, writes: make(map[int64][]func([]byte))}
	}
	return &Tx{db: db, id: db.eng.Begin()}
}

// Read copies page pid's payload into buf within the transaction.
func (tx *Tx) Read(pid int64, buf []byte) (int, error) {
	return tx.db.Read(pid, buf)
}

// Update applies fn to page pid's payload. The change becomes durable at
// Commit.
func (tx *Tx) Update(pid int64, fn func(payload []byte)) error {
	if tx.db.conc != nil {
		return tx.db.conc.txUpdate(tx.db, tx, pid, fn)
	}
	return tx.db.do("tx-update", func(p *sim.Proc) error {
		return tx.db.eng.Update(p, tx.id, page.ID(pid), fn)
	})
}

// Commit forces the transaction's log records to stable storage.
func (tx *Tx) Commit() error {
	if tx.db.conc != nil {
		return tx.db.conc.txCommit(tx.db, tx)
	}
	return tx.db.do("tx-commit", func(p *sim.Proc) error {
		return tx.db.eng.Commit(p, tx.id)
	})
}

// Scan reads n consecutive pages starting at start through the engine's
// read-ahead path (sequential classification, multi-page I/O with SSD
// trimming) and calls fn with each page's payload.
func (db *DB) Scan(start int64, n int, fn func(pid int64, payload []byte) error) error {
	if db.conc != nil {
		return db.conc.scan(db, start, n, fn)
	}
	return db.do("scan", func(p *sim.Proc) error {
		if err := db.eng.Scan(p, page.ID(start), n); err != nil {
			return err
		}
		if fn == nil {
			return nil
		}
		for i := int64(0); i < int64(n); i++ {
			f, err := db.eng.Get(p, page.ID(start+i))
			if err != nil {
				return err
			}
			if err := fn(start+i, f.Pg.Payload); err != nil {
				return err
			}
		}
		return nil
	})
}

// Checkpoint performs a sharp checkpoint: all dirty pages in memory (and,
// under LC, in the SSD) are flushed to the database storage.
func (db *DB) Checkpoint() error {
	if db.conc != nil {
		return db.conc.checkpoint(db)
	}
	return db.do("checkpoint", func(p *sim.Proc) error {
		return db.eng.Checkpoint(p)
	})
}

// Idle advances the clock by d with no foreground work, giving background
// processes — periodic checkpoints, the SSD scrubber — time to run.
func (db *DB) Idle(d time.Duration) error {
	if db.conc != nil {
		return db.conc.idle(d)
	}
	return db.do("idle", func(p *sim.Proc) error {
		p.Sleep(d)
		return nil
	})
}

// Crash simulates a failure: memory and unforced log records are lost and
// the SSD cache is discarded, exactly as a restart in the paper behaves.
// Call Recover before using the DB again.
func (db *DB) Crash() error {
	if db.conc != nil {
		return db.conc.crash()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.eng.Crash()
	return nil
}

// Recover replays the durable log against the database storage, restoring
// every committed update.
func (db *DB) Recover() error {
	if db.conc != nil {
		return db.conc.recover()
	}
	return db.do("recover", func(p *sim.Proc) error {
		return db.eng.Recover(p)
	})
}

// Faults returns the DB's fault injector, or nil when Options.FaultSeed was
// zero. Use it to arm crash points and schedule device faults; the device
// names are "db", "ssd" and "wal". See docs/FAILURES.md for the failure
// model and each design's recovery semantics. On the partitioned backend
// each partition has its own injector — use PartitionFaults.
func (db *DB) Faults() *fault.Injector {
	if db.conc != nil {
		return nil // per-partition injectors; see PartitionFaults
	}
	return db.eng.Config().Faults
}

// PartitionFaults returns partition i's fault injector on the partitioned
// backend (nil when fault injection is off or i is out of range); on the
// serialized backends partition 0 is the whole DB, so PartitionFaults(0) is
// Faults(). Injectors are engine-private state: arm schedules only while the
// DB is quiescent (no operations in flight).
func (db *DB) PartitionFaults(i int) *fault.Injector {
	if db.conc == nil {
		if i == 0 {
			return db.Faults()
		}
		return nil
	}
	if i < 0 || i >= len(db.conc.parts) {
		return nil
	}
	return db.conc.parts[i].eng.Config().Faults
}

// FailSSD makes the SSD device fail on its next operation, modeling a
// whole-SSD loss during forward processing. The engine detects the loss,
// replaces the device, rebuilds the cache and — under LC — redoes the
// uniquely-dirty SSD pages from the WAL; no committed update is lost.
// Stats.SSDLosses and Stats.SSDRedoRecords report what happened. On the
// partitioned backend every partition's SSD region fails at once.
func (db *DB) FailSSD() error {
	if db.conc != nil {
		return db.conc.failSSD(db)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	inj := db.eng.Config().Faults
	if inj == nil {
		return errors.New("turbobp: fault injection disabled (set Options.FaultSeed)")
	}
	if db.eng.SSDDevice() == nil {
		return errors.New("turbobp: no SSD to fail")
	}
	inj.FailDeviceNow("ssd")
	return nil
}

// AllocPage reserves the next unused page and returns its id, or an error
// when the database is full. Allocation is a metadata operation: the page
// was formatted (zero-filled) at Open.
func (db *DB) AllocPage() (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if db.allocated >= db.opts.DBPages {
		return 0, fmt.Errorf("turbobp: database full (%d pages)", db.opts.DBPages)
	}
	pid := db.allocated
	db.allocated++
	return pid, nil
}

// Allocated returns the page-allocation watermark.
func (db *DB) Allocated() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.allocated
}

// SetAllocated restores the allocation watermark (callers persist it in a
// metadata page across restarts).
func (db *DB) SetAllocated(n int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n > db.allocated {
		db.allocated = n
	}
}

// PageSize returns the usable payload bytes per page.
func (db *DB) PageSize() int { return db.opts.PageSize }

// Pages returns the database capacity in pages.
func (db *DB) Pages() int64 { return db.opts.DBPages }

// Stats is a point-in-time summary of DB activity.
type Stats struct {
	Design      Design
	Reads       int64
	Updates     int64
	Commits     int64
	PoolHits    int64
	PoolMisses  int64
	SSDHits     int64
	SSDMisses   int64
	SSDOccupied int
	SSDDirty    int
	DiskReads   int64 // database device read I/Os
	DiskWrites  int64
	SSDReads    int64 // SSD device read I/Os
	SSDWrites   int64
	Checkpoints int64
	VirtualTime time.Duration // simulated backend only

	// Partitioned-backend counters (zero unless Options.Concurrency > 1).
	Partitions      int   // page-range partitions the backend runs
	LatchedReads    int64 // reads served by the striped-latch fast path (no partition lock)
	SyncedCommits   int64 // commits that requested durability (CommitSync != none)
	WALSyncs        int64 // fsyncs actually issued for them
	MaxCommitFlight int   // largest group-commit flight observed

	// Fault-injection outcomes (zero unless Options.FaultSeed is set).
	SSDLosses      int64 // whole-SSD failures survived
	SSDRedoRecords int64 // WAL redo records applied to rebuild lost dirty SSD pages
	SSDReadErrors  int64 // SSD read attempts that failed and degraded to disk traffic

	// Silent-corruption defense (zero unless faults were injected or the
	// scrubber found decayed cells; see docs/FAILURES.md).
	CorruptDetected int64 // SSD frames that failed checksum/id/LSN verification
	CorruptRepaired int64 // of which healed transparently (drop, rewrite or WAL redo)
	CorruptRedo     int64 // dirty SSD frames rebuilt through WAL redo
	DiskCorruptions int64 // database pages that failed verification on read
	DiskRepairsSSD  int64 // of which healed in place from an intact SSD copy
	DiskRepairsWAL  int64 // of which rebuilt from the newest WAL record
	ScrubSweeps     int64 // scrubber wake-ups (zero unless Options.ScrubInterval is set)
	ScrubFrames     int64 // frames the scrubber verified
	ScrubRepairs    int64 // frames the scrubber rewrote in place from the disk copy
	RetiredSlots    int   // SSD slots permanently retired after repeated failures
	Quarantined     bool  // SSD demoted to pass-through after excessive retirements
}

// Stats returns current counters.
func (db *DB) Stats() Stats {
	if db.conc != nil {
		return db.conc.stats(db)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	es := db.eng.Stats()
	ms := db.eng.SSD().Stats()
	s := Stats{
		Design:      db.eng.Config().Design,
		Reads:       es.Reads,
		Updates:     es.Updates,
		Commits:     es.Commits,
		PoolHits:    es.PoolHits,
		PoolMisses:  es.PoolMisses,
		SSDHits:     ms.Hits,
		SSDMisses:   ms.Misses,
		SSDOccupied: db.eng.SSD().Occupied(),
		SSDDirty:    db.eng.SSD().DirtyCount(),
		Checkpoints: es.Checkpoints,
		VirtualTime: db.env.Now(),

		SSDLosses:      es.SSDLosses,
		SSDRedoRecords: es.SSDLossRedo,
		SSDReadErrors:  ms.ReadErrors,

		CorruptDetected: ms.CorruptDetected,
		CorruptRepaired: ms.CorruptRepaired,
		CorruptRedo:     es.CorruptRedo,
		DiskCorruptions: es.DiskCorruptions,
		DiskRepairsSSD:  es.DiskRepairsSSD,
		DiskRepairsWAL:  es.DiskRepairsWAL,
		ScrubSweeps:     ms.ScrubSweeps,
		ScrubFrames:     ms.ScrubFrames,
		ScrubRepairs:    ms.ScrubRepairs,
		RetiredSlots:    db.eng.SSD().RetiredSlots(),
		Quarantined:     db.eng.SSD().Quarantined(),
	}
	d := db.eng.DBDevice().Stats().Load()
	s.DiskReads, s.DiskWrites = d.ReadOps, d.WriteOps
	if dev := db.eng.SSDDevice(); dev != nil {
		sd := dev.Stats().Load()
		s.SSDReads, s.SSDWrites = sd.ReadOps, sd.WriteOps
	}
	return s
}

// LatencySummary reports per-tier read latency and commit latency as
// human-readable lines (count, mean, p50, p99, max per tier).
func (db *DB) LatencySummary() string {
	if db.conc != nil {
		return db.conc.latencySummary()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	l := db.eng.Latencies()
	return fmt.Sprintf("pool-hit:  %s\nssd-hit:   %s\ndisk-read: %s\ncommit:    %s",
		l.PoolHit.Summary(), l.SSDHit.Summary(), l.DiskRead.Summary(), l.Commit.Summary())
}

// Close checkpoints, stops background work, and releases resources. The
// DB cannot be used afterwards.
func (db *DB) Close() error {
	if db.conc != nil {
		return db.conc.close(db)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	err := db.doLocked("close-checkpoint", func(p *sim.Proc) error {
		return db.eng.Checkpoint(p)
	})
	db.eng.StopBackground()
	db.env.Run(db.env.Now() + time.Second) // let background processes exit
	db.env.Shutdown()
	db.closed = true
	for _, f := range db.files {
		if serr := f.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
