package turbobp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"turbobp/internal/engine"
)

// dbLat reaches the engine's latency histograms for assertions.
func dbLat(db *DB) *engine.Latencies { return db.eng.Latencies() }

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.DBPages == 0 {
		opts.DBPages = 256
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 16
	}
	if opts.PageSize == 0 {
		opts.PageSize = 64
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenRequiresDBPages(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with no DBPages succeeded")
	}
}

func TestReadFreshPageIsZero(t *testing.T) {
	db := openTest(t, Options{Design: LC})
	buf := make([]byte, 64)
	n, err := db.Read(10, buf)
	if err != nil || n != 64 {
		t.Fatalf("Read = (%d,%v)", n, err)
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Error("fresh page not zero")
	}
}

func TestUpdateThenRead(t *testing.T) {
	db := openTest(t, Options{Design: LC})
	if err := db.Update(3, func(pl []byte) { copy(pl, "hello") }); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := db.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("read %q", buf)
	}
}

func TestTransactionCommit(t *testing.T) {
	db := openTest(t, Options{Design: DW})
	tx := db.Begin()
	for i := int64(0); i < 5; i++ {
		i := i
		if err := tx.Update(i, func(pl []byte) { pl[0] = byte(i + 1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	for i := int64(0); i < 5; i++ {
		db.Read(i, buf)
		if buf[0] != byte(i+1) {
			t.Errorf("page %d = %d", i, buf[0])
		}
	}
}

func TestScanVisitsAllPages(t *testing.T) {
	db := openTest(t, Options{Design: DW, PoolPages: 64})
	for i := int64(20); i < 30; i++ {
		i := i
		db.Update(i, func(pl []byte) { pl[0] = byte(i) })
	}
	var seen []int64
	err := db.Scan(20, 10, func(pid int64, payload []byte) error {
		if payload[0] != byte(pid) {
			t.Errorf("page %d payload %d", pid, payload[0])
		}
		seen = append(seen, pid)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 || seen[0] != 20 || seen[9] != 29 {
		t.Errorf("seen = %v", seen)
	}
}

func TestScanCallbackErrorPropagates(t *testing.T) {
	db := openTest(t, Options{Design: NoSSD})
	boom := errors.New("boom")
	err := db.Scan(0, 4, func(pid int64, _ []byte) error {
		if pid == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestCrashRecoverDurability(t *testing.T) {
	for _, design := range []Design{NoSSD, CW, DW, LC, TAC} {
		t.Run(design.String(), func(t *testing.T) {
			db := openTest(t, Options{Design: design, PoolPages: 8})
			for i := int64(0); i < 30; i++ {
				i := i
				if err := db.Update(i, func(pl []byte) { pl[0] = byte(i + 100) }); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}
			if err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 1)
			for i := int64(0); i < 30; i++ {
				if _, err := db.Read(i, buf); err != nil {
					t.Fatal(err)
				}
				if buf[0] != byte(i+100) {
					t.Errorf("page %d = %d after recovery", i, buf[0])
				}
			}
		})
	}
}

func TestCheckpointTruncatesRecoveryWork(t *testing.T) {
	db := openTest(t, Options{Design: LC})
	for i := int64(0); i < 10; i++ {
		db.Update(i, func(pl []byte) { pl[0] = 1 })
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d", s.Checkpoints)
	}
	db.Crash()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	db.Read(5, buf)
	if buf[0] != 1 {
		t.Error("update lost despite checkpoint")
	}
}

func TestStatsProgress(t *testing.T) {
	db := openTest(t, Options{Design: DW, PoolPages: 8})
	for i := int64(0); i < 40; i++ {
		db.Update(i%20, func(pl []byte) { pl[0]++ })
	}
	s := db.Stats()
	if s.Design != DW {
		t.Errorf("Design = %v", s.Design)
	}
	if s.Updates != 40 || s.Commits != 40 {
		t.Errorf("Updates/Commits = %d/%d", s.Updates, s.Commits)
	}
	if s.PoolMisses == 0 || s.DiskReads == 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.VirtualTime <= 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestSSDCachingVisibleInStats(t *testing.T) {
	db := openTest(t, Options{Design: LC, PoolPages: 8, SSDFrames: 64})
	// Touch more pages than the pool holds, twice: the second pass should
	// hit the SSD.
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < 32; i++ {
			buf := make([]byte, 1)
			if _, err := db.Read(i, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := db.Stats()
	if s.SSDHits == 0 {
		t.Errorf("no SSD hits: %+v", s)
	}
	if s.SSDOccupied == 0 {
		t.Error("SSD empty")
	}
}

func TestUseAfterClose(t *testing.T) {
	db := openTest(t, Options{Design: NoSSD})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Read(0, make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after close: %v", err)
	}
	if err := db.Update(0, func([]byte) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestFileBackend(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, Options{Design: LC, Dir: dir, DBPages: 128, PoolPages: 8, SSDFrames: 32, PageSize: 128})
	for i := int64(0); i < 64; i++ {
		i := i
		if err := db.Update(i, func(pl []byte) {
			pl[0] = byte(i)
			copy(pl[1:], fmt.Sprintf("page-%d", i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 128)
	for i := int64(0); i < 64; i++ {
		if _, err := db.Read(i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Errorf("page %d first byte %d", i, buf[0])
		}
	}
	s := db.Stats()
	if s.DiskReads == 0 && s.SSDReads == 0 {
		t.Errorf("no device traffic recorded: %+v", s)
	}
}

func TestFileBackendCrashRecover(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, Options{Design: LC, Dir: dir, DBPages: 64, PoolPages: 4, PageSize: 64})
	for i := int64(0); i < 32; i++ {
		i := i
		db.Update(i, func(pl []byte) { pl[0] = byte(i * 3) })
	}
	db.Crash()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	for i := int64(0); i < 32; i++ {
		db.Read(i, buf)
		if buf[0] != byte(i*3) {
			t.Errorf("page %d = %d", i, buf[0])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	db := openTest(t, Options{Design: DW, DBPages: 512, PoolPages: 32})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				pid := rng.Int63n(512)
				if rng.Intn(2) == 0 {
					if err := db.Update(pid, func(pl []byte) { pl[0]++ }); err != nil {
						errs <- err
						return
					}
				} else if _, err := db.Read(pid, make([]byte, 4)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Stats().Reads; got == 0 {
		t.Error("no reads recorded")
	}
}

func TestAllDesignsSmoke(t *testing.T) {
	for _, design := range []Design{NoSSD, CW, DW, LC, TAC} {
		t.Run(design.String(), func(t *testing.T) {
			db := openTest(t, Options{Design: design, PoolPages: 8, SSDFrames: 32})
			for i := int64(0); i < 64; i++ {
				i := i
				if err := db.Update(i%48, func(pl []byte) { pl[0] = byte(i) }); err != nil {
					t.Fatal(err)
				}
				if _, err := db.Read((i*7)%48, make([]byte, 1)); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLatencySummary(t *testing.T) {
	db := openTest(t, Options{Design: LC, PoolPages: 8})
	for i := int64(0); i < 40; i++ {
		db.Update(i%30, func(pl []byte) { pl[0]++ })
		db.Read((i*3)%30, make([]byte, 4))
	}
	s := db.LatencySummary()
	for _, want := range []string{"pool-hit", "ssd-hit", "disk-read", "commit"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
	// Disk reads must be slower than pool hits under the simulated devices.
	l := dbLat(db)
	if l.DiskRead.Count() == 0 || l.PoolHit.Count() == 0 {
		t.Fatalf("missing samples: %s", s)
	}
	if l.DiskRead.Mean() <= l.PoolHit.Mean() {
		t.Errorf("disk mean %v <= pool mean %v", l.DiskRead.Mean(), l.PoolHit.Mean())
	}
}

func TestFuzzyCheckpointOption(t *testing.T) {
	db := openTest(t, Options{Design: LC, FuzzyCheckpoints: true, PoolPages: 8})
	for i := int64(0); i < 20; i++ {
		db.Update(i, func(pl []byte) { pl[0] = byte(i + 1) })
	}
	before := db.Stats().DiskWrites
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A fuzzy checkpoint flushes nothing (only the log record).
	if got := db.Stats().DiskWrites; got != before {
		t.Errorf("fuzzy checkpoint wrote %d pages to disk", got-before)
	}
	db.Crash()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	for i := int64(0); i < 20; i++ {
		db.Read(i, buf)
		if buf[0] != byte(i+1) {
			t.Errorf("page %d = %d after fuzzy-checkpoint recovery", i, buf[0])
		}
	}
}

func TestWarmRestartOption(t *testing.T) {
	db := openTest(t, Options{Design: DW, WarmRestart: true, PoolPages: 8, SSDFrames: 64})
	for i := int64(0); i < 40; i++ {
		db.Read(i, make([]byte, 4))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().SSDOccupied == 0 {
		t.Error("warm restart restored nothing")
	}
}
