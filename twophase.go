package turbobp

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/wal"
)

// This file makes cross-partition transactions crash-atomic on the
// partitioned file backend: Tx.Commit runs presumed-abort two-phase commit
// over the partitions' per-partition WALs, coordinated by a small append-only
// decision log (txn.log).
//
// Protocol, per Tx.Commit spanning several partitions:
//
//  1. Apply. All participant partition mutexes are taken in ascending base
//     order and held to the end. In each participant a local transaction is
//     begun and, for every page, the before-image is logged as an undo
//     record before the buffered mutations apply (after-images log as usual).
//  2. Prepare. Each participant appends and flushes a prepare record binding
//     its local transaction to the global transaction id. When a durability
//     mode is configured the shared log file is fsynced here, so prepares
//     can never be less durable than the decision that follows.
//  3. Decide. One commit-decision record for the global id is appended to
//     the coordinator log (and fsynced under a durability mode). This write
//     is the commit point.
//  4. Commit. Each participant appends and flushes its commit record, the
//     mutexes release, and a configured group commit forces the tail.
//
// Recovery (Options.OpenExisting) resolves each partition's in-doubt
// transactions — prepared, no commit record — by asking the reloaded
// coordinator log: a recorded decision redoes the transaction, no decision
// aborts it by restoring the logged before-images (presumed abort, so the
// coordinator log only ever records commits). Within one incarnation the
// participant mutexes are held across the whole window, so an aborted
// transaction's records are the last for its pages and the before-images
// restore committed state. The abort itself is never logged, though, so the
// same in-doubt records resolve to abort again on every later restart;
// recovery guards against replaying such a stale before-image over data a
// later incarnation committed (see RecoverDurable).
//
// Single-partition transactions skip steps 2–3: their commit record alone
// decides them, exactly like an autocommit update.

// coordLog is the two-phase-commit coordinator's decision log: an
// append-only file of WAL-framed commit records, one per decided-commit
// global transaction. Presumed abort means absence is an abort decision, so
// nothing is ever logged for aborts and a torn tail (a record half-written
// when the process died) reads as "no decision" — the safe outcome, since
// no participant has committed before the decision write returns.
type coordLog struct {
	mu        sync.Mutex
	f         *os.File
	sync      bool // fsync each decision (CommitSync != CommitSyncNone)
	buf       []byte
	committed map[uint64]bool // global tx id -> decided commit
	maxGtx    uint64
}

// openCoordLog opens (or, when fresh is true, truncates) the decision log
// at path and loads the decided set, truncating any torn tail so later
// appends land after the last intact record.
func openCoordLog(path string, fresh, sync bool) (*coordLog, error) {
	flags := os.O_RDWR | os.O_CREATE
	if fresh {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	cl := &coordLog{f: f, sync: sync, committed: make(map[uint64]bool)}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	end := 0
	for end < len(data) {
		r, sz, err := wal.DecodeRecord(data[end:])
		if err != nil {
			break // torn tail: no decision was recorded here
		}
		if r.Type == wal.TypeCommit {
			cl.committed[r.TxID] = true
			if r.TxID > cl.maxGtx {
				cl.maxGtx = r.TxID
			}
		}
		end += sz
	}
	if end < len(data) {
		if err := f.Truncate(int64(end)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(end), 0); err != nil {
		f.Close()
		return nil, err
	}
	return cl, nil
}

// logCommit records the commit decision for global transaction gtx. When it
// returns, the decision is in the OS (and on the platter under a durability
// mode): the transaction is committed no matter what happens next.
func (cl *coordLog) logCommit(gtx uint64) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.buf = wal.EncodeRecord(cl.buf[:0], wal.Record{Type: wal.TypeCommit, LSN: gtx, TxID: gtx})
	if _, err := cl.f.Write(cl.buf); err != nil {
		return fmt.Errorf("turbobp: coordinator log: %w", err)
	}
	if cl.sync {
		if err := cl.f.Sync(); err != nil {
			return fmt.Errorf("turbobp: coordinator log sync: %w", err)
		}
	}
	cl.committed[gtx] = true
	return nil
}

// isCommitted reports whether a commit decision was recorded for gtx.
func (cl *coordLog) isCommitted(gtx uint64) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.committed[gtx]
}

func (cl *coordLog) close() error { return cl.f.Close() }

// undoImage remembers one page's before-image so a failed transaction can
// be compensated in place.
type undoImage struct {
	local  int64
	before []byte
}

// participant is one partition's share of a cross-partition transaction.
type participant struct {
	pt    *partition
	local []int64                // partition-local page ids, ascending
	fns   map[int64]func([]byte) // local id -> chained buffered mutations
	id    uint64                 // local transaction id (assigned under pt.mu)
	undos []undoImage
}

// txCommit commits a buffered transaction with presumed-abort two-phase
// commit (see the file comment). Transactions confined to one partition
// take the one-phase fast path.
func (c *concurrent) txCommit(db *DB, tx *Tx) error {
	if c.closed.Load() {
		return ErrClosed
	}
	writes := tx.writes
	tx.writes = nil
	if len(writes) == 0 {
		return nil
	}
	for pid := range writes {
		if err := c.checkPage(pid, db.opts.DBPages); err != nil {
			return err
		}
	}

	// Group the buffered pages by partition; chain each page's mutations.
	byPart := make(map[*partition]*participant)
	for pid, fns := range writes {
		pt, local := c.partOf(pid)
		pc := byPart[pt]
		if pc == nil {
			pc = &participant{pt: pt, fns: make(map[int64]func([]byte))}
			byPart[pt] = pc
		}
		pc.local = append(pc.local, local)
		chain := fns
		pc.fns[local] = func(p []byte) {
			for _, fn := range chain {
				fn(p)
			}
		}
	}
	parts := make([]*participant, 0, len(byPart))
	for _, pc := range byPart {
		sort.Slice(pc.local, func(i, j int) bool { return pc.local[i] < pc.local[j] })
		parts = append(parts, pc)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].pt.base < parts[j].pt.base })

	if err := c.txCommitLocked(parts); err != nil {
		return err
	}
	return c.syncCommit()
}

// txCommitLocked runs the protocol with every participant mutex held
// (taken ascending, released before return).
func (c *concurrent) txCommitLocked(parts []*participant) error {
	for _, pc := range parts {
		pc.pt.mu.Lock()
	}
	defer func() {
		for i := len(parts) - 1; i >= 0; i-- {
			parts[i].pt.mu.Unlock()
		}
	}()

	// Apply: begin a local transaction per participant, log before-images,
	// run the buffered mutations.
	for i, pc := range parts {
		pc := pc
		err := pc.pt.do("tx-apply", func(p *sim.Proc) error {
			pc.id = pc.pt.eng.Begin()
			for _, local := range pc.local {
				f, err := pc.pt.eng.Get(p, page.ID(local))
				if err != nil {
					return err
				}
				before := append([]byte(nil), f.Pg.Payload...)
				pc.pt.eng.LogUndo(page.ID(local), pc.id, before)
				pc.undos = append(pc.undos, undoImage{local: local, before: before})
				if err := pc.pt.eng.Update(p, pc.id, page.ID(local), pc.fns[local]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			c.compensate(parts[:i+1])
			return err
		}
	}

	// One participant: its commit record alone decides the transaction.
	if len(parts) == 1 {
		pc := parts[0]
		return pc.pt.do("tx-commit", func(p *sim.Proc) error {
			return pc.pt.eng.Commit(p, pc.id)
		})
	}

	gtx := c.nextGtx.Add(1)

	// Prepare: force each participant's records with a prepare binding its
	// local transaction to gtx; then make the prepares as durable as the
	// decision will be.
	for _, pc := range parts {
		pc := pc
		err := pc.pt.do("tx-prepare", func(p *sim.Proc) error {
			return pc.pt.eng.Prepare(p, pc.id, gtx)
		})
		if err != nil {
			c.compensate(parts)
			return err
		}
	}
	if c.gc != nil {
		if err := c.gc.Commit(); err != nil {
			c.compensate(parts)
			return err
		}
	}
	if c.crash2PC != nil {
		if err := c.crash2PC("prepared"); err != nil {
			return err
		}
	}

	// Decide: the commit point.
	if err := c.coord.logCommit(gtx); err != nil {
		c.compensate(parts)
		return err
	}
	if c.crash2PC != nil {
		if err := c.crash2PC("decided"); err != nil {
			return err
		}
	}

	// Commit each participant; a failure here cannot un-commit the
	// transaction (the decision is logged) — recovery will finish the job.
	var firstErr error
	for _, pc := range parts {
		pc := pc
		err := pc.pt.do("tx-commit", func(p *sim.Proc) error {
			return pc.pt.eng.Commit(p, pc.id)
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// compensate rolls back participants whose mutations may have applied:
// each gets a fresh committed transaction restoring the logged
// before-images in reverse order. Called with the participant mutexes held;
// best-effort (the caller returns the original error regardless).
func (c *concurrent) compensate(parts []*participant) {
	for _, pc := range parts {
		pc := pc
		if len(pc.undos) == 0 {
			continue
		}
		pc.pt.do("tx-rollback", func(p *sim.Proc) error {
			id := pc.pt.eng.Begin()
			for i := len(pc.undos) - 1; i >= 0; i-- {
				u := pc.undos[i]
				err := pc.pt.eng.Update(p, id, page.ID(u.local), func(pl []byte) {
					copy(pl, u.before)
				})
				if err != nil {
					return err
				}
			}
			return pc.pt.eng.Commit(p, id)
		})
	}
}
