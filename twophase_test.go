package turbobp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// killForTest abandons a DB the way SIGKILL would: file descriptors close
// with no checkpoint, no final WAL flush and no fsync. Everything the
// engines wrote through the OS survives in the files (kill-9 semantics);
// everything in process memory — buffer pools, pending log records — is
// gone. The DB is unusable afterwards; reopen the directory with
// Options.OpenExisting.
func killForTest(db *DB) {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	if db.conc != nil {
		db.conc.closed.Store(true)
		if db.conc.coord != nil {
			db.conc.coord.close()
		}
	}
	for _, f := range db.files {
		f.Close()
	}
}

func reopenOpts(dir string, existing bool) Options {
	return Options{
		DBPages: 64, PageSize: 64, PoolPages: 16, Design: NoSSD,
		Dir: dir, Concurrency: 4, OpenExisting: existing,
	}
}

func mustOpen(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(existing=%v): %v", opts.OpenExisting, err)
	}
	return db
}

func writePage(t *testing.T, db *DB, pid int64, val byte) {
	t.Helper()
	if err := db.Update(pid, func(p []byte) {
		for i := range p {
			p[i] = val
		}
	}); err != nil {
		t.Fatalf("Update(%d): %v", pid, err)
	}
}

func readPage(t *testing.T, db *DB, pid int64) []byte {
	t.Helper()
	buf := make([]byte, db.PageSize())
	if _, err := db.Read(pid, buf); err != nil {
		t.Fatalf("Read(%d): %v", pid, err)
	}
	return buf
}

func wantFill(t *testing.T, db *DB, pid int64, val byte, what string) {
	t.Helper()
	got := readPage(t, db, pid)
	if !bytes.Equal(got, bytes.Repeat([]byte{val}, len(got))) {
		t.Fatalf("%s: page %d = %v..., want all %#x", what, pid, got[:4], val)
	}
}

// TestReopenDurability pins the basic restart contract on the partitioned
// backend: every acknowledged autocommit update survives an abrupt kill and
// an OpenExisting reopen, with no checkpoint and no clean Close in between.
func TestReopenDurability(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, reopenOpts(dir, false))
	for pid := int64(0); pid < 64; pid++ {
		writePage(t, db, pid, byte(pid+1))
	}
	killForTest(db)

	db2 := mustOpen(t, reopenOpts(dir, true))
	defer db2.Close()
	for pid := int64(0); pid < 64; pid++ {
		wantFill(t, db2, pid, byte(pid+1), "after kill+reopen")
	}
}

// TestReopenDurabilitySerial is the same contract on the serialized file
// backend (Concurrency 1), which reopens through the single-engine path.
func TestReopenDurabilitySerial(t *testing.T) {
	dir := t.TempDir()
	opts := reopenOpts(dir, false)
	opts.Concurrency = 1
	db := mustOpen(t, opts)
	for pid := int64(0); pid < 16; pid++ {
		writePage(t, db, pid, byte(pid+1))
	}
	killForTest(db)

	opts.OpenExisting = true
	db2 := mustOpen(t, opts)
	defer db2.Close()
	for pid := int64(0); pid < 16; pid++ {
		wantFill(t, db2, pid, byte(pid+1), "after kill+reopen (serial)")
	}
}

// TestReopenAfterClose pins that a cleanly closed directory also reopens.
func TestReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, reopenOpts(dir, false))
	writePage(t, db, 3, 0xAB)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2 := mustOpen(t, reopenOpts(dir, true))
	defer db2.Close()
	wantFill(t, db2, 3, 0xAB, "after close+reopen")
}

// TestCrossPartitionCommitAtomic pins the happy path: a transaction
// spanning partitions commits everywhere, survives a kill, and both pages
// carry the new value after reopen.
func TestCrossPartitionCommitAtomic(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, reopenOpts(dir, false))
	p1, p2 := int64(3), int64(60) // partitions 0 and 3 (16 pages each)
	writePage(t, db, p1, 0x11)
	writePage(t, db, p2, 0x11)

	tx := db.Begin()
	set := func(p []byte) {
		for i := range p {
			p[i] = 0x22
		}
	}
	if err := tx.Update(p1, set); err != nil {
		t.Fatalf("tx.Update: %v", err)
	}
	if err := tx.Update(p2, set); err != nil {
		t.Fatalf("tx.Update: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("tx.Commit: %v", err)
	}
	wantFill(t, db, p1, 0x22, "in-process")
	wantFill(t, db, p2, 0x22, "in-process")
	killForTest(db)

	db2 := mustOpen(t, reopenOpts(dir, true))
	defer db2.Close()
	wantFill(t, db2, p1, 0x22, "after kill+reopen")
	wantFill(t, db2, p2, 0x22, "after kill+reopen")
}

// crash2PCAt opens a fresh 4-partition DB, seeds two pages in different
// partitions with 0xAA, then runs a cross-partition transaction whose
// commit is abandoned mid-protocol at the given stage ("prepared": prepares
// durable, no decision; "decided": decision durable, participants not
// committed) and kills the process image. Returns the reopened DB.
func crash2PCAt(t *testing.T, stage string) (*DB, int64, int64) {
	t.Helper()
	dir := t.TempDir()
	db := mustOpen(t, reopenOpts(dir, false))
	p1, p2 := int64(5), int64(50)
	writePage(t, db, p1, 0xAA)
	writePage(t, db, p2, 0xAA)

	errCrash := errors.New("crash2PC")
	db.conc.crash2PC = func(s string) error {
		if s == stage {
			return errCrash
		}
		return nil
	}
	tx := db.Begin()
	set := func(p []byte) {
		for i := range p {
			p[i] = 0xBB
		}
	}
	if err := tx.Update(p1, set); err != nil {
		t.Fatalf("tx.Update: %v", err)
	}
	if err := tx.Update(p2, set); err != nil {
		t.Fatalf("tx.Update: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, errCrash) {
		t.Fatalf("tx.Commit = %v, want the injected crash", err)
	}
	killForTest(db)

	db2 := mustOpen(t, reopenOpts(dir, true))
	t.Cleanup(func() { db2.Close() })
	return db2, p1, p2
}

// TestTwoPhaseInDoubtAborts pins presumed abort: a transaction killed after
// its prepares were forced but before the coordinator logged a decision
// rolls back completely on reopen — both pages keep their old value, even
// though the new values' redo records are durable in the WALs.
func TestTwoPhaseInDoubtAborts(t *testing.T) {
	db, p1, p2 := crash2PCAt(t, "prepared")
	wantFill(t, db, p1, 0xAA, "in-doubt abort")
	wantFill(t, db, p2, 0xAA, "in-doubt abort")
}

// TestTwoPhaseDecidedCommits pins the other resolution: once the decision
// record is durable the transaction commits on reopen even though no
// participant had written its commit record — recovery finishes the job.
func TestTwoPhaseDecidedCommits(t *testing.T) {
	db, p1, p2 := crash2PCAt(t, "decided")
	wantFill(t, db, p1, 0xBB, "decided commit")
	wantFill(t, db, p2, 0xBB, "decided commit")
}

// TestTwoPhaseRecoveredStateSurvivesNextReopen pins idempotence: resolving
// in-doubt transactions and then killing again without new writes must
// resolve the same way on the next reopen.
func TestTwoPhaseRecoveredStateSurvivesNextReopen(t *testing.T) {
	db, p1, p2 := crash2PCAt(t, "prepared")
	dir := db.opts.Dir
	killForTest(db)
	db2 := mustOpen(t, reopenOpts(dir, true))
	defer db2.Close()
	wantFill(t, db2, p1, 0xAA, "second reopen")
	wantFill(t, db2, p2, 0xAA, "second reopen")
}

// TestOpenExistingGeometryGuard pins the meta.json check: reopening with a
// different geometry must fail loudly instead of misreading the files.
func TestOpenExistingGeometryGuard(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, reopenOpts(dir, false))
	killForTest(db)

	bad := reopenOpts(dir, true)
	bad.DBPages = 128
	if _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "geometry mismatch") {
		t.Fatalf("Open with wrong DBPages: %v, want geometry mismatch", err)
	}
	if _, err := Open(reopenOpts(t.TempDir(), true)); err == nil {
		t.Fatal("OpenExisting on an empty directory succeeded")
	}
	if _, err := Open(Options{DBPages: 64, OpenExisting: true}); err == nil {
		t.Fatal("OpenExisting without Dir succeeded")
	}
}

// TestTxReadDoesNotSeeBufferedWrites pins the documented buffering
// semantics on the partitioned backend.
func TestTxReadDoesNotSeeBufferedWrites(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, reopenOpts(dir, false))
	defer db.Close()
	writePage(t, db, 7, 0x01)
	tx := db.Begin()
	if err := tx.Update(7, func(p []byte) { p[0] = 0xFF }); err != nil {
		t.Fatalf("tx.Update: %v", err)
	}
	if got := readPage(t, db, 7); got[0] != 0x01 {
		t.Fatalf("buffered write visible before commit: %#x", got[0])
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("tx.Commit: %v", err)
	}
	if got := readPage(t, db, 7); got[0] != 0xFF {
		t.Fatalf("committed write not visible: %#x", got[0])
	}
}

// TestTwoPhaseStaleInDoubtAcrossGenerations is the regression test for a
// bug only multi-generation histories expose: an in-doubt transaction that
// generation N leaves behind is aborted by generation N+1's recovery in
// memory only — nothing durable marks the abort, so its undo record stays
// unresolved in the log. Generation N+1 then commits new writes to the
// same pages, and generation N+2's recovery must NOT let the stale
// before-image — captured before those writes — clobber them during the
// backward undo pass.
func TestTwoPhaseStaleInDoubtAcrossGenerations(t *testing.T) {
	dir := t.TempDir()
	p1, p2 := int64(35), int64(50) // different partitions with P=4
	pairTx := func(db *DB, val byte) error {
		tx := db.Begin()
		set := func(p []byte) {
			for i := range p {
				p[i] = val
			}
		}
		if err := tx.Update(p1, set); err != nil {
			return err
		}
		if err := tx.Update(p2, set); err != nil {
			return err
		}
		return tx.Commit()
	}

	// Generation 1: committed history, then an in-doubt tx (prepared on
	// both partitions, no coordinator decision) at kill time.
	db := mustOpen(t, reopenOpts(dir, false))
	for v := byte(1); v <= 5; v++ {
		if err := pairTx(db, v); err != nil {
			t.Fatalf("gen1 tx %d: %v", v, err)
		}
	}
	errCrash := errors.New("crash")
	db.conc.crash2PC = func(s string) error {
		if s == "prepared" {
			return errCrash
		}
		return nil
	}
	if err := pairTx(db, 99); !errors.Is(err, errCrash) {
		t.Fatalf("in-doubt tx: %v", err)
	}
	killForTest(db)

	// Generation 2: recovery aborts the in-doubt tx (presumed abort),
	// then newer transactions commit over the same pages.
	db = mustOpen(t, reopenOpts(dir, true))
	wantFill(t, db, p1, 5, "gen2 start")
	wantFill(t, db, p2, 5, "gen2 start")
	for v := byte(6); v <= 10; v++ {
		if err := pairTx(db, v); err != nil {
			t.Fatalf("gen2 tx %d: %v", v, err)
		}
	}
	killForTest(db)

	// Generation 3: the stale undo from generation 1 must not regress the
	// pages below generation 2's committed state.
	db = mustOpen(t, reopenOpts(dir, true))
	defer db.Close()
	wantFill(t, db, p1, 10, "gen3")
	wantFill(t, db, p2, 10, "gen3")
}
